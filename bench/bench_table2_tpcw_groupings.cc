// Table 2: TPC-W MALB-SC transaction groupings and replica allocation.
// Paper: [BestSeller] 2, [AdminRespo] 4, [BuyConfirm] 7,
//        [BuyRequest, ShopinCart] 1,
//        [ExecSearch, OrderDispl, OrderInqur, ProducDet] 1,
//        [HomeAction, NewProduct, SearchRequ, AdmiRqust] 1.
#include "bench/bench_common.h"
#include "src/core/bin_packing.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

void Run(ResultSink& out) {
  const Workload w = BuildTpcw(kTpcwMediumEbs);
  const ClusterConfig config = MakeClusterConfig(512 * kMiB);

  out.Begin("Table 2: TPC-W MALB-SC groupings", "MidDB 1.8GB, capacity 442MB, 16 replicas");

  // Static packing (what the balancer computes before any load exists).
  const auto ws = BuildWorkingSets(w.registry, w.schema);
  const Pages capacity = BytesToPages(config.replica.memory - config.replica.reserved);
  const auto packing = PackTransactionGroups(ws, capacity, EstimationMethod::kSizeContent);
  out.AddScalar("static group count (paper 6)", static_cast<double>(packing.groups.size()));
  std::vector<GroupReport> static_groups;
  for (const auto& g : packing.groups) {
    GroupReport gr;
    for (TxnTypeId t : g.types) {
      gr.types.push_back(w.registry.Get(t).name);
    }
    gr.replicas = 0;  // not yet allocated
    static_groups.push_back(std::move(gr));
    const std::string id = "static group " + std::to_string(static_groups.size());
    out.AddScalar(id + " est MB", BytesToMiB(PagesToBytes(g.estimate_pages)));
    if (g.overflow) {
      out.Note(id + " overflows replica capacity (working set > memory)");
    }
  }
  out.AddGroups("static packing (replicas column all 0: not yet allocated)", static_groups);

  // Dynamic allocation after a converged run (paper's replica counts:
  // BestSeller 2, AdminResponse 4, BuyConfirm 7, others 1 each).
  const int clients = CalibratedClients(w, kTpcwOrdering, config);
  const auto run = bench::RunPolicy(w, kTpcwOrdering, "MALB-SC", config, clients,
                                    Seconds(400.0), Seconds(200.0));
  out.AddRun(bench::Rec("MALB-SC (converged)", "MALB-SC", w, kTpcwOrdering, run, 76));
  out.AddGroups("replica allocation after convergence (ordering mix)", run.groups);
}

}  // namespace
}  // namespace tashkent

int main(int argc, char** argv) {
  tashkent::bench::Harness harness(argc, argv, "table2_tpcw_groupings");
  tashkent::Run(harness.out());
  return 0;
}
