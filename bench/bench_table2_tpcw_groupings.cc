// Table 2: TPC-W MALB-SC transaction groupings and replica allocation.
// Paper: [BestSeller] 2, [AdminRespo] 4, [BuyConfirm] 7,
//        [BuyRequest, ShopinCart] 1,
//        [ExecSearch, OrderDispl, OrderInqur, ProducDet] 1,
//        [HomeAction, NewProduct, SearchRequ, AdmiRqust] 1.
#include "bench/bench_common.h"
#include "src/core/bin_packing.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

void Run() {
  const Workload w = BuildTpcw(kTpcwMediumEbs);
  const ClusterConfig config = MakeClusterConfig(512 * kMiB);

  // Static packing (what the balancer computes before any load exists).
  const auto ws = BuildWorkingSets(w.registry, w.schema);
  const Pages capacity = BytesToPages(config.replica.memory - config.replica.reserved);
  const auto packing = PackTransactionGroups(ws, capacity, EstimationMethod::kSizeContent);

  PrintHeader("Table 2: TPC-W MALB-SC groupings", "MidDB 1.8GB, capacity 442MB, 16 replicas");
  std::printf("static packing (%zu groups; paper: 6):\n", packing.groups.size());
  for (const auto& g : packing.groups) {
    std::printf("  [");
    for (size_t i = 0; i < g.types.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", w.registry.Get(g.types[i]).name.c_str());
    }
    std::printf("]  est=%.0f MB%s\n", BytesToMiB(PagesToBytes(g.estimate_pages)),
                g.overflow ? " (overflow)" : "");
  }

  // Dynamic allocation after a converged run (paper's replica counts:
  // BestSeller 2, AdminResponse 4, BuyConfirm 7, others 1 each).
  const int clients = CalibratedClients(w, kTpcwOrdering, config);
  const auto run = bench::RunPolicy(w, kTpcwOrdering, Policy::kMalbSC, config, clients,
                                    Seconds(400.0), Seconds(200.0));
  std::printf("\nreplica allocation after convergence (ordering mix):\n");
  PrintGroups(run.groups);
}

}  // namespace
}  // namespace tashkent

int main() {
  tashkent::Run();
  return 0;
}
