// Campaign "table2" — Table 2: TPC-W MALB-SC transaction groupings and
// replica allocation.
// Paper: [BestSeller] 2, [AdminRespo] 4, [BuyConfirm] 7,
//        [BuyRequest, ShopinCart] 1,
//        [ExecSearch, OrderDispl, OrderInqur, ProducDet] 1,
//        [HomeAction, NewProduct, SearchRequ, AdmiRqust] 1.
#include "bench/bench_common.h"
#include "src/core/bin_packing.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

Workload Mid() { return BuildTpcw(kTpcwMediumEbs); }

std::vector<CampaignCell> Cells() {
  bench::CellOptions converged;
  converged.warmup = Seconds(400.0);
  converged.measure = Seconds(200.0);
  return {
      bench::PolicyCell("malb-sc", Mid, kTpcwOrdering, "MALB-SC", converged),
  };
}

// Static packing (what the balancer computes before any load exists) is a
// pure computation — emitted from the report stage, no cluster run needed.
void ReportStaticPacking(const Workload& w, const ClusterConfig& config, ResultSink& out,
                         double paper_group_count) {
  const auto ws = BuildWorkingSets(w.registry, w.schema);
  const Pages capacity = BytesToPages(config.replica.memory - config.replica.reserved);
  const auto packing = PackTransactionGroups(ws, capacity, EstimationMethod::kSizeContent);
  out.AddScalar("static group count (paper " + std::to_string(static_cast<int>(paper_group_count)) + ")",
                static_cast<double>(packing.groups.size()));
  std::vector<GroupReport> static_groups;
  for (const auto& g : packing.groups) {
    GroupReport gr;
    for (TxnTypeId t : g.types) {
      gr.types.push_back(w.registry.Get(t).name);
    }
    gr.replicas = 0;  // not yet allocated
    static_groups.push_back(std::move(gr));
    const std::string id = "static group " + std::to_string(static_groups.size());
    out.AddScalar(id + " est MB", BytesToMiB(PagesToBytes(g.estimate_pages)));
    if (g.overflow) {
      out.Note(id + " overflows replica capacity (working set > memory)");
    }
  }
  out.AddGroups("static packing (replicas column all 0: not yet allocated)", static_groups);
}

void Report(const CampaignOutputs& r, ResultSink& out) {
  out.Begin("Table 2: TPC-W MALB-SC groupings", "MidDB 1.8GB, capacity 442MB, 16 replicas");
  ReportStaticPacking(Mid(), MakeClusterConfig(512 * kMiB), out, 6);

  // Dynamic allocation after a converged run (paper's replica counts:
  // BestSeller 2, AdminResponse 4, BuyConfirm 7, others 1 each).
  const CellOutput& run = r.Get("malb-sc");
  out.AddRun(bench::RecOf("MALB-SC (converged)", run, 76));
  out.AddGroups("replica allocation after convergence (ordering mix)", run.Result().groups);
}

RegisterCampaign table2{{"table2", "Table 2", "TPC-W MALB-SC groupings",
                         "MidDB 1.8GB, capacity 442MB, 16 replicas", Cells, Report}};

}  // namespace
}  // namespace tashkent
