// Figure 5: throughput of the three grouping methods.
// MidDB 1.8 GB, RAM 512 MB, 16 replicas, ordering mix.
// Paper: LeastConnections 37, LARD 50, MALB-SCAP 57, MALB-S 73, MALB-SC 76.
// MALB-SCAP under-estimates working sets and over-packs (more disk I/O);
// MALB-S over-estimates but errs safely.
#include "bench/bench_common.h"
#include "src/core/bin_packing.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

void Run(ResultSink& out) {
  const Workload w = BuildTpcw(kTpcwMediumEbs);
  const ClusterConfig config = MakeClusterConfig(512 * kMiB);
  const int clients = CalibratedClients(w, kTpcwOrdering, config);

  const auto lc = bench::RunPolicy(w, kTpcwOrdering, "LeastConnections", config, clients);
  const auto lard = bench::RunPolicy(w, kTpcwOrdering, "LARD", config, clients);
  const auto scap = bench::RunPolicy(w, kTpcwOrdering, "MALB-SCAP", config, clients);
  const auto s = bench::RunPolicy(w, kTpcwOrdering, "MALB-S", config, clients);
  const auto sc = bench::RunPolicy(w, kTpcwOrdering, "MALB-SC", config, clients);

  out.Begin("Figure 5: throughput of grouping methods",
            "MidDB 1.8GB, RAM 512MB, 16 replicas, ordering mix");
  out.AddRun(bench::Rec("LeastConnections", "LeastConnections", w, kTpcwOrdering, lc, 37));
  out.AddRun(bench::Rec("LARD", "LARD", w, kTpcwOrdering, lard, 50));
  out.AddRun(bench::Rec("MALB-SCAP", "MALB-SCAP", w, kTpcwOrdering, scap, 57));
  out.AddRun(bench::Rec("MALB-S", "MALB-S", w, kTpcwOrdering, s, 73));
  out.AddRun(bench::Rec("MALB-SC", "MALB-SC", w, kTpcwOrdering, sc, 76));
  out.AddRatio("MALB-SC / MALB-SCAP", 76.0 / 57.0, sc.tps / scap.tps);
  out.AddRatio("MALB-SC / MALB-S", 76.0 / 73.0, sc.tps / s.tps);

  // Group counts per method (paper: SCAP 4, SC 6, S 7).
  const auto ws = BuildWorkingSets(w.registry, w.schema);
  const Pages capacity = BytesToPages(config.replica.memory - config.replica.reserved);
  out.AddScalar(
      "groups SCAP (paper 4)",
      static_cast<double>(
          PackTransactionGroups(ws, capacity, EstimationMethod::kSizeContentAccess)
              .groups.size()));
  out.AddScalar("groups SC (paper 6)",
                static_cast<double>(
                    PackTransactionGroups(ws, capacity, EstimationMethod::kSizeContent)
                        .groups.size()));
  out.AddScalar(
      "groups S (paper 7)",
      static_cast<double>(
          PackTransactionGroups(ws, capacity, EstimationMethod::kSize).groups.size()));
  out.AddScalar("MALB-SCAP read KB/txn (over-packing)", scap.read_kb_per_txn);
  out.AddScalar("MALB-SC read KB/txn", sc.read_kb_per_txn);
}

}  // namespace
}  // namespace tashkent

int main(int argc, char** argv) {
  tashkent::bench::Harness harness(argc, argv, "fig5_grouping_methods");
  tashkent::Run(harness.out());
  return 0;
}
