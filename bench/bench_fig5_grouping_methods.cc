// Figure 5: throughput of the three grouping methods.
// MidDB 1.8 GB, RAM 512 MB, 16 replicas, ordering mix.
// Paper: LeastConnections 37, LARD 50, MALB-SCAP 57, MALB-S 73, MALB-SC 76.
// MALB-SCAP under-estimates working sets and over-packs (more disk I/O);
// MALB-S over-estimates but errs safely.
#include "bench/bench_common.h"
#include "src/core/bin_packing.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

void Run() {
  const Workload w = BuildTpcw(kTpcwMediumEbs);
  const ClusterConfig config = MakeClusterConfig(512 * kMiB);
  const int clients = CalibratedClients(w, kTpcwOrdering, config);

  const auto lc = bench::RunPolicy(w, kTpcwOrdering, Policy::kLeastConnections, config, clients);
  const auto lard = bench::RunPolicy(w, kTpcwOrdering, Policy::kLard, config, clients);
  const auto scap = bench::RunPolicy(w, kTpcwOrdering, Policy::kMalbSCAP, config, clients);
  const auto s = bench::RunPolicy(w, kTpcwOrdering, Policy::kMalbS, config, clients);
  const auto sc = bench::RunPolicy(w, kTpcwOrdering, Policy::kMalbSC, config, clients);

  PrintHeader("Figure 5: throughput of grouping methods",
              "MidDB 1.8GB, RAM 512MB, 16 replicas, ordering mix");
  PrintTpsRow("LeastConnections", 37, lc.tps, lc.mean_response_s);
  PrintTpsRow("LARD", 50, lard.tps, lard.mean_response_s);
  PrintTpsRow("MALB-SCAP", 57, scap.tps, scap.mean_response_s);
  PrintTpsRow("MALB-S", 73, s.tps, s.mean_response_s);
  PrintTpsRow("MALB-SC", 76, sc.tps, sc.mean_response_s);
  PrintRatio("MALB-SC / MALB-SCAP", 76.0 / 57.0, sc.tps / scap.tps);
  PrintRatio("MALB-SC / MALB-S", 76.0 / 73.0, sc.tps / s.tps);

  // Group counts per method (paper: SCAP 4, SC 6, S 7).
  const auto ws = BuildWorkingSets(w.registry, w.schema);
  const Pages capacity = BytesToPages(config.replica.memory - config.replica.reserved);
  std::printf("\ngroup counts: SCAP=%zu (paper 4), SC=%zu (paper 6), S=%zu (paper 7)\n",
              PackTransactionGroups(ws, capacity, EstimationMethod::kSizeContentAccess)
                  .groups.size(),
              PackTransactionGroups(ws, capacity, EstimationMethod::kSizeContent).groups.size(),
              PackTransactionGroups(ws, capacity, EstimationMethod::kSize).groups.size());
  std::printf("MALB-SCAP reads %.1f KB/txn vs MALB-SC %.1f KB/txn (over-packing shows as "
              "extra disk reads)\n",
              scap.read_kb_per_txn, sc.read_kb_per_txn);
}

}  // namespace
}  // namespace tashkent

int main() {
  tashkent::Run();
  return 0;
}
