// Campaign "fig5" — Figure 5: throughput of the three grouping methods.
// MidDB 1.8 GB, RAM 512 MB, 16 replicas, ordering mix.
// Paper: LeastConnections 37, LARD 50, MALB-SCAP 57, MALB-S 73, MALB-SC 76.
// MALB-SCAP under-estimates working sets and over-packs (more disk I/O);
// MALB-S over-estimates but errs safely.
#include "bench/bench_common.h"
#include "src/core/bin_packing.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

Workload Mid() { return BuildTpcw(kTpcwMediumEbs); }

std::vector<CampaignCell> Cells() {
  return {
      bench::PolicyCell("lc", Mid, kTpcwOrdering, "LeastConnections"),
      bench::PolicyCell("lard", Mid, kTpcwOrdering, "LARD"),
      bench::PolicyCell("malb-scap", Mid, kTpcwOrdering, "MALB-SCAP"),
      bench::PolicyCell("malb-s", Mid, kTpcwOrdering, "MALB-S"),
      bench::PolicyCell("malb-sc", Mid, kTpcwOrdering, "MALB-SC"),
  };
}

void Report(const CampaignOutputs& r, ResultSink& out) {
  const ExperimentResult& scap = r.Result("malb-scap");
  const ExperimentResult& s = r.Result("malb-s");
  const ExperimentResult& sc = r.Result("malb-sc");

  out.Begin("Figure 5: throughput of grouping methods",
            "MidDB 1.8GB, RAM 512MB, 16 replicas, ordering mix");
  out.AddRun(bench::RecOf("LeastConnections", r.Get("lc"), 37));
  out.AddRun(bench::RecOf("LARD", r.Get("lard"), 50));
  out.AddRun(bench::RecOf("MALB-SCAP", r.Get("malb-scap"), 57));
  out.AddRun(bench::RecOf("MALB-S", r.Get("malb-s"), 73));
  out.AddRun(bench::RecOf("MALB-SC", r.Get("malb-sc"), 76));
  out.AddRatio("MALB-SC / MALB-SCAP", 76.0 / 57.0, sc.tps / scap.tps);
  out.AddRatio("MALB-SC / MALB-S", 76.0 / 73.0, sc.tps / s.tps);

  // Group counts per method (paper: SCAP 4, SC 6, S 7). Pure static packing —
  // computed here on the main thread, no cluster run needed.
  const Workload w = Mid();
  const ClusterConfig config = MakeClusterConfig(512 * kMiB);
  const auto ws = BuildWorkingSets(w.registry, w.schema);
  const Pages capacity = BytesToPages(config.replica.memory - config.replica.reserved);
  out.AddScalar(
      "groups SCAP (paper 4)",
      static_cast<double>(
          PackTransactionGroups(ws, capacity, EstimationMethod::kSizeContentAccess)
              .groups.size()));
  out.AddScalar("groups SC (paper 6)",
                static_cast<double>(
                    PackTransactionGroups(ws, capacity, EstimationMethod::kSizeContent)
                        .groups.size()));
  out.AddScalar(
      "groups S (paper 7)",
      static_cast<double>(
          PackTransactionGroups(ws, capacity, EstimationMethod::kSize).groups.size()));
  out.AddScalar("MALB-SCAP read KB/txn (over-packing)", scap.read_kb_per_txn);
  out.AddScalar("MALB-SC read KB/txn", sc.read_kb_per_txn);
}

RegisterCampaign fig5{{"fig5", "Figure 5", "throughput of grouping methods",
                       "MidDB 1.8GB, RAM 512MB, 16 replicas, ordering mix", Cells, Report}};

}  // namespace
}  // namespace tashkent
