// Table 1: TPC-W average disk I/O per transaction (per replica).
// Paper: write 12 KB for all methods; reads 72 / 57 / 20 KB
// (LeastConnections / LARD / MALB-SC); read fraction 1.00 / 0.79 / 0.28.
#include "bench/bench_common.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

void Run(ResultSink& out) {
  const Workload w = BuildTpcw(kTpcwMediumEbs);
  const ClusterConfig config = MakeClusterConfig(512 * kMiB);
  const int clients = CalibratedClients(w, kTpcwOrdering, config);

  const auto lc = bench::RunPolicy(w, kTpcwOrdering, "LeastConnections", config, clients);
  const auto lard = bench::RunPolicy(w, kTpcwOrdering, "LARD", config, clients);
  const auto malb = bench::RunPolicy(w, kTpcwOrdering, "MALB-SC", config, clients);

  out.Begin("Table 1: TPC-W average disk I/O per transaction",
            "MidDB 1.8GB, RAM 512MB, 16 replicas, ordering mix");
  out.AddRun(
      bench::Rec("LeastConnections", "LeastConnections", w, kTpcwOrdering, lc, 37, 12, 72));
  out.AddRun(bench::Rec("LARD", "LARD", w, kTpcwOrdering, lard, 50, 12, 57));
  out.AddRun(bench::Rec("MALB-SC", "MALB-SC", w, kTpcwOrdering, malb, 76, 12, 20));
  out.AddRatio("LARD reads / LC reads (paper 0.79)", 0.79,
               lard.read_kb_per_txn / lc.read_kb_per_txn);
  out.AddRatio("MALB-SC reads / LC reads (paper 0.28)", 0.28,
               malb.read_kb_per_txn / lc.read_kb_per_txn);
}

}  // namespace
}  // namespace tashkent

int main(int argc, char** argv) {
  tashkent::bench::Harness harness(argc, argv, "table1_tpcw_diskio");
  tashkent::Run(harness.out());
  return 0;
}
