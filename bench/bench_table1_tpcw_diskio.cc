// Table 1: TPC-W average disk I/O per transaction (per replica).
// Paper: write 12 KB for all methods; reads 72 / 57 / 20 KB
// (LeastConnections / LARD / MALB-SC); read fraction 1.00 / 0.79 / 0.28.
#include "bench/bench_common.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

void Run() {
  const Workload w = BuildTpcw(kTpcwMediumEbs);
  const ClusterConfig config = MakeClusterConfig(512 * kMiB);
  const int clients = CalibratedClients(w, kTpcwOrdering, config);

  const auto lc = bench::RunPolicy(w, kTpcwOrdering, Policy::kLeastConnections, config, clients);
  const auto lard = bench::RunPolicy(w, kTpcwOrdering, Policy::kLard, config, clients);
  const auto malb = bench::RunPolicy(w, kTpcwOrdering, Policy::kMalbSC, config, clients);

  PrintHeader("Table 1: TPC-W average disk I/O per transaction",
              "MidDB 1.8GB, RAM 512MB, 16 replicas, ordering mix");
  PrintIoRow("LeastConnections", 12, 72, lc.write_kb_per_txn, lc.read_kb_per_txn);
  PrintIoRow("LARD", 12, 57, lard.write_kb_per_txn, lard.read_kb_per_txn);
  PrintIoRow("MALB-SC", 12, 20, malb.write_kb_per_txn, malb.read_kb_per_txn);
  std::printf("\nread fraction relative to LeastConnections:\n");
  PrintRatio("LARD / LC (paper 0.79)", 0.79, lard.read_kb_per_txn / lc.read_kb_per_txn);
  PrintRatio("MALB-SC / LC (paper 0.28)", 0.28, malb.read_kb_per_txn / lc.read_kb_per_txn);
}

}  // namespace
}  // namespace tashkent

int main() {
  tashkent::Run();
  return 0;
}
