// Campaign "table1" — Table 1: TPC-W average disk I/O per transaction (per
// replica). Paper: write 12 KB for all methods; reads 72 / 57 / 20 KB
// (LeastConnections / LARD / MALB-SC); read fraction 1.00 / 0.79 / 0.28.
#include "bench/bench_common.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

Workload Mid() { return BuildTpcw(kTpcwMediumEbs); }

std::vector<CampaignCell> Cells() {
  return {
      bench::PolicyCell("lc", Mid, kTpcwOrdering, "LeastConnections"),
      bench::PolicyCell("lard", Mid, kTpcwOrdering, "LARD"),
      bench::PolicyCell("malb-sc", Mid, kTpcwOrdering, "MALB-SC"),
  };
}

void Report(const CampaignOutputs& r, ResultSink& out) {
  const ExperimentResult& lc = r.Result("lc");
  const ExperimentResult& lard = r.Result("lard");
  const ExperimentResult& malb = r.Result("malb-sc");

  out.Begin("Table 1: TPC-W average disk I/O per transaction",
            "MidDB 1.8GB, RAM 512MB, 16 replicas, ordering mix");
  out.AddRun(bench::RecOf("LeastConnections", r.Get("lc"), 37, 12, 72));
  out.AddRun(bench::RecOf("LARD", r.Get("lard"), 50, 12, 57));
  out.AddRun(bench::RecOf("MALB-SC", r.Get("malb-sc"), 76, 12, 20));
  out.AddRatio("LARD reads / LC reads (paper 0.79)", 0.79,
               lard.read_kb_per_txn / lc.read_kb_per_txn);
  out.AddRatio("MALB-SC reads / LC reads (paper 0.28)", 0.28,
               malb.read_kb_per_txn / lc.read_kb_per_txn);
}

RegisterCampaign table1{{"table1", "Table 1", "TPC-W average disk I/O per transaction",
                         "MidDB 1.8GB, RAM 512MB, 16 replicas, ordering mix", Cells,
                         Report}};

}  // namespace
}  // namespace tashkent
