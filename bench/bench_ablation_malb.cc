// Ablation study of the MALB design choices (beyond the paper's own merging
// ablation):
//   * fast reallocation (balance equations) on/off;
//   * queue-pressure load extension on/off;
//   * update-filtering mode: dynamic (our extension) vs freeze (paper) —
//     the paper's Section 4.2.3 freeze versus its stated future work;
//   * Gatekeeper admission limit sweep.
#include "bench/bench_common.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

void Run(ResultSink& out) {
  const Workload w = BuildTpcw(kTpcwMediumEbs);
  const ClusterConfig base = MakeClusterConfig(512 * kMiB);
  const int clients = CalibratedClients(w, kTpcwOrdering, base);

  out.Begin("Ablation: MALB design choices",
            "MidDB 1.8GB, RAM 512MB, 16 replicas, ordering mix");

  const auto reference = bench::RunPolicy(w, kTpcwOrdering, "MALB-SC", base, clients);
  out.AddRun(bench::Rec("MALB-SC (reference)", "MALB-SC", w, kTpcwOrdering, reference, 76));

  {
    ClusterConfig c = base;
    c.malb.enable_fast_realloc = false;
    const auto r = bench::RunPolicy(w, kTpcwOrdering, "MALB-SC", c, clients);
    out.AddRun(bench::Rec("fast reallocation off", "MALB-SC", w, kTpcwOrdering, r));
  }
  {
    ClusterConfig c = base;
    c.malb.queue_pressure_weight = 0.0;
    const auto r = bench::RunPolicy(w, kTpcwOrdering, "MALB-SC", c, clients);
    out.AddRun(bench::Rec("queue-pressure off", "MALB-SC", w, kTpcwOrdering, r));
  }
  {
    ClusterConfig c = base;
    c.malb.enable_merging = false;
    const auto r = bench::RunPolicy(w, kTpcwOrdering, "MALB-SC", c, clients);
    out.AddRun(bench::Rec("merging off", "MALB-SC", w, kTpcwOrdering, r, 70));
  }
  {
    ClusterConfig c = bench::WithFiltering(base);
    const auto r = bench::RunPolicy(w, kTpcwOrdering, "MALB-SC", c, clients, Seconds(400.0));
    out.AddRun(bench::Rec("+filtering (dynamic mode)", "MALB-SC", w, kTpcwOrdering, r, 113));
  }
  {
    ClusterConfig c = bench::WithFiltering(base);
    c.malb.filtering_mode = FilteringMode::kFreezeWhenStable;
    const auto r = bench::RunPolicy(w, kTpcwOrdering, "MALB-SC", c, clients, Seconds(400.0));
    out.AddRun(bench::Rec("+filtering (freeze mode)", "MALB-SC", w, kTpcwOrdering, r, 113));
  }

  out.Note("Gatekeeper admission limit sweep (MALB-SC):");
  for (int mpl : {2, 4, 8, 16, 32}) {
    ClusterConfig c = base;
    c.proxy.max_in_flight = mpl;
    const auto r = bench::RunPolicy(w, kTpcwOrdering, "MALB-SC", c, clients);
    out.AddRun(
        bench::Rec("MPL " + std::to_string(mpl), "MALB-SC", w, kTpcwOrdering, r));
  }
}

}  // namespace
}  // namespace tashkent

int main(int argc, char** argv) {
  tashkent::bench::Harness harness(argc, argv, "ablation_malb");
  tashkent::Run(harness.out());
  return 0;
}
