// Ablation study of the MALB design choices (beyond the paper's own merging
// ablation):
//   * fast reallocation (balance equations) on/off;
//   * queue-pressure load extension on/off;
//   * update-filtering mode: dynamic (our extension) vs freeze (paper) —
//     the paper's Section 4.2.3 freeze versus its stated future work;
//   * Gatekeeper admission limit sweep.
#include "bench/bench_common.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

void Run() {
  const Workload w = BuildTpcw(kTpcwMediumEbs);
  const ClusterConfig base = MakeClusterConfig(512 * kMiB);
  const int clients = CalibratedClients(w, kTpcwOrdering, base);

  PrintHeader("Ablation: MALB design choices",
              "MidDB 1.8GB, RAM 512MB, 16 replicas, ordering mix");

  const auto reference = bench::RunPolicy(w, kTpcwOrdering, Policy::kMalbSC, base, clients);
  PrintTpsRow("MALB-SC (reference)", 76, reference.tps, reference.mean_response_s);

  {
    ClusterConfig c = base;
    c.malb.enable_fast_realloc = false;
    const auto r = bench::RunPolicy(w, kTpcwOrdering, Policy::kMalbSC, c, clients);
    PrintTpsRow("  fast reallocation off", 0, r.tps, r.mean_response_s);
  }
  {
    ClusterConfig c = base;
    c.malb.queue_pressure_weight = 0.0;
    const auto r = bench::RunPolicy(w, kTpcwOrdering, Policy::kMalbSC, c, clients);
    PrintTpsRow("  queue-pressure off", 0, r.tps, r.mean_response_s);
  }
  {
    ClusterConfig c = base;
    c.malb.enable_merging = false;
    const auto r = bench::RunPolicy(w, kTpcwOrdering, Policy::kMalbSC, c, clients);
    PrintTpsRow("  merging off (paper 70)", 70, r.tps, r.mean_response_s);
  }
  {
    ClusterConfig c = bench::WithFiltering(base);
    const auto r = bench::RunPolicy(w, kTpcwOrdering, Policy::kMalbSC, c, clients,
                                    Seconds(400.0));
    PrintTpsRow("  +filtering (dynamic mode)", 113, r.tps, r.mean_response_s);
  }
  {
    ClusterConfig c = bench::WithFiltering(base);
    c.malb.filtering_mode = FilteringMode::kFreezeWhenStable;
    const auto r = bench::RunPolicy(w, kTpcwOrdering, Policy::kMalbSC, c, clients,
                                    Seconds(400.0));
    PrintTpsRow("  +filtering (freeze mode)", 113, r.tps, r.mean_response_s);
  }

  std::printf("\nGatekeeper admission limit sweep (MALB-SC):\n");
  for (int mpl : {2, 4, 8, 16, 32}) {
    ClusterConfig c = base;
    c.proxy.max_in_flight = mpl;
    const auto r = bench::RunPolicy(w, kTpcwOrdering, Policy::kMalbSC, c, clients);
    std::printf("  MPL %2d: %7.1f tps  (rt %.2f s)\n", mpl, r.tps, r.mean_response_s);
  }
}

}  // namespace
}  // namespace tashkent

int main() {
  tashkent::Run();
  return 0;
}
