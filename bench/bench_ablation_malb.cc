// Campaign "ablation" — ablation study of the MALB design choices (beyond
// the paper's own merging ablation):
//   * fast reallocation (balance equations) on/off;
//   * queue-pressure load extension on/off;
//   * update-filtering mode: dynamic (our extension) vs freeze (paper) —
//     the paper's Section 4.2.3 freeze versus its stated future work;
//   * Gatekeeper admission limit sweep.
#include "bench/bench_common.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

constexpr int kMplSweep[] = {2, 4, 8, 16, 32};

Workload Mid() { return BuildTpcw(kTpcwMediumEbs); }

std::vector<CampaignCell> Cells() {
  std::vector<CampaignCell> cells;
  cells.push_back(bench::PolicyCell("reference", Mid, kTpcwOrdering, "MALB-SC"));

  bench::CellOptions no_fast;
  no_fast.tweak = [](ClusterConfig& c) { c.malb.enable_fast_realloc = false; };
  cells.push_back(bench::PolicyCell("no-fast-realloc", Mid, kTpcwOrdering, "MALB-SC", no_fast));

  bench::CellOptions no_queue;
  no_queue.tweak = [](ClusterConfig& c) { c.malb.queue_pressure_weight = 0.0; };
  cells.push_back(bench::PolicyCell("no-queue-pressure", Mid, kTpcwOrdering, "MALB-SC", no_queue));

  bench::CellOptions no_merge;
  no_merge.tweak = [](ClusterConfig& c) { c.malb.enable_merging = false; };
  cells.push_back(bench::PolicyCell("no-merging", Mid, kTpcwOrdering, "MALB-SC", no_merge));

  bench::CellOptions uf_dynamic;
  uf_dynamic.filtering = true;
  uf_dynamic.warmup = Seconds(400.0);
  cells.push_back(bench::PolicyCell("uf-dynamic", Mid, kTpcwOrdering, "MALB-SC", uf_dynamic));

  bench::CellOptions uf_freeze = uf_dynamic;
  uf_freeze.tweak = [](ClusterConfig& c) {
    c.malb.filtering_mode = FilteringMode::kFreezeWhenStable;
  };
  cells.push_back(bench::PolicyCell("uf-freeze", Mid, kTpcwOrdering, "MALB-SC", uf_freeze));

  for (int mpl : kMplSweep) {
    bench::CellOptions opts;
    opts.tweak = [mpl](ClusterConfig& c) { c.proxy.max_in_flight = mpl; };
    cells.push_back(bench::PolicyCell("mpl/" + std::to_string(mpl), Mid, kTpcwOrdering,
                                      "MALB-SC", opts));
  }
  return cells;
}

void Report(const CampaignOutputs& r, ResultSink& out) {
  out.Begin("Ablation: MALB design choices",
            "MidDB 1.8GB, RAM 512MB, 16 replicas, ordering mix");
  out.AddRun(bench::RecOf("MALB-SC (reference)", r.Get("reference"), 76));
  out.AddRun(bench::RecOf("fast reallocation off", r.Get("no-fast-realloc")));
  out.AddRun(bench::RecOf("queue-pressure off", r.Get("no-queue-pressure")));
  out.AddRun(bench::RecOf("merging off", r.Get("no-merging"), 70));
  out.AddRun(bench::RecOf("+filtering (dynamic mode)", r.Get("uf-dynamic"), 113));
  out.AddRun(bench::RecOf("+filtering (freeze mode)", r.Get("uf-freeze"), 113));

  out.Note("Gatekeeper admission limit sweep (MALB-SC):");
  for (int mpl : kMplSweep) {
    out.AddRun(bench::RecOf("MPL " + std::to_string(mpl), r.Get("mpl/" + std::to_string(mpl))));
  }
}

RegisterCampaign ablation{{"ablation", "", "Ablation: MALB design choices",
                           "MidDB 1.8GB, RAM 512MB, 16 replicas, ordering mix", Cells,
                           Report}};

}  // namespace
}  // namespace tashkent
