// Pre-refactor hot-path implementations, preserved as the comparison baseline
// for the `perf` campaign.
//
// LegacySimulator is the event kernel this repo shipped before the slab
// refactor: an EventId -> std::function hash map beside a lazily-cancelled
// priority_queue (one heap allocation per event with a non-trivial capture,
// one hash insert + erase per event). LegacyBufferPool is the earlier LRU: a
// std::list of entries with an unordered_map index (one list-node allocation
// plus hash probe per page/chunk touch).
//
// These are deliberately frozen copies — bench-only, never linked into the
// library — so BENCH_perf.json can quote an honest old-vs-new events/sec and
// touches/sec ratio on the same host, same compiler, same workload. Both
// pairs execute identical operation sequences; the microbenches cross-check
// order-sensitive checksums to prove behavioral equivalence before quoting a
// speedup.
#ifndef BENCH_LEGACY_BASELINE_H_
#define BENCH_LEGACY_BASELINE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/storage/buffer_pool.h"  // AccessSkew
#include "src/storage/relation.h"

namespace tashkent {
namespace legacy {

// The pre-slab event kernel (hash map + lazily-cancelled heap), API-compatible
// with the subset of Simulator the microbench drives.
class LegacySimulator {
 public:
  using Callback = std::function<void()>;
  using EventId = uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  LegacySimulator() = default;
  LegacySimulator(const LegacySimulator&) = delete;
  LegacySimulator& operator=(const LegacySimulator&) = delete;

  SimTime Now() const { return now_; }

  EventId ScheduleAt(SimTime when, Callback cb) {
    if (when < now_) {
      when = now_;
    }
    const EventId id = next_id_++;
    heap_.push(Event{when, next_seq_++, id});
    callbacks_.emplace(id, std::move(cb));
    return id;
  }

  EventId ScheduleAfter(SimDuration delay, Callback cb) {
    return ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(cb));
  }

  bool Cancel(EventId id) { return callbacks_.erase(id) > 0; }

  void RunAll() {
    while (!heap_.empty()) {
      const Event ev = heap_.top();
      heap_.pop();
      auto it = callbacks_.find(ev.id);
      if (it == callbacks_.end()) {
        continue;  // Cancelled.
      }
      Callback cb = std::move(it->second);
      callbacks_.erase(it);
      now_ = ev.when;
      ++executed_;
      cb();
    }
  }

  size_t pending_events() const { return callbacks_.size(); }
  uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    EventId id;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
};

// The pre-slab chunked-LRU pool core (std::list + unordered_map index, list
// dirty FIFO), API-compatible with the touch paths the microbench drives.
class LegacyBufferPool {
 public:
  LegacyBufferPool(Bytes capacity, Pages chunk_pages = 32)
      : capacity_pages_(std::max<Pages>(BytesToPages(capacity), 1)),
        chunk_pages_(std::max<Pages>(chunk_pages, 1)) {}

  PoolAccess TouchScan(const RelationMeta& rel) {
    PoolAccess out;
    const uint64_t full_chunks = static_cast<uint64_t>(rel.pages / chunk_pages_);
    const Pages tail = rel.pages % chunk_pages_;
    const uint64_t total_chunks = full_chunks + (tail > 0 ? 1 : 0);
    for (uint64_t c = 0; c < total_chunks; ++c) {
      const Pages weight = (c < full_chunks) ? chunk_pages_ : tail;
      const uint64_t key = ChunkKey(rel.id, c);
      if (IsResident(key)) {
        TouchEntry(key);
        out.pages_hit += weight;
      } else {
        Insert(key, weight);
        out.pages_missed += weight;
      }
    }
    return out;
  }

  PoolAccess TouchScanWindow(const RelationMeta& rel, Pages window, Rng& rng,
                             const AccessSkew& skew) {
    if (window <= 0 || window >= rel.pages) {
      return TouchScan(rel);
    }
    PoolAccess out;
    const uint64_t start_page = skew.SampleWindowStart(rng, rel.pages, window);
    const uint64_t first_chunk = start_page / static_cast<uint64_t>(chunk_pages_);
    const uint64_t last_page = start_page + static_cast<uint64_t>(window) - 1;
    const uint64_t last_chunk = last_page / static_cast<uint64_t>(chunk_pages_);
    const uint64_t rel_full_chunks = static_cast<uint64_t>(rel.pages / chunk_pages_);
    const Pages rel_tail = rel.pages % chunk_pages_;
    for (uint64_t c = first_chunk; c <= last_chunk; ++c) {
      const Pages weight = (c < rel_full_chunks) ? chunk_pages_ : rel_tail;
      if (weight <= 0) {
        break;
      }
      const uint64_t key = ChunkKey(rel.id, c);
      if (IsResident(key)) {
        TouchEntry(key);
        out.pages_hit += weight;
      } else {
        Insert(key, weight);
        out.pages_missed += weight;
      }
    }
    return out;
  }

  PoolAccess TouchRandom(const RelationMeta& rel, int n_pages, Rng& rng,
                         const AccessSkew& skew = {}) {
    PoolAccess out;
    if (rel.pages <= 0) {
      return out;
    }
    for (int i = 0; i < n_pages; ++i) {
      const uint64_t page = skew.SamplePage(rng, rel.pages);
      const uint64_t chunk = page / static_cast<uint64_t>(chunk_pages_);
      const uint64_t ckey = ChunkKey(rel.id, chunk);
      const uint64_t pkey = PageKey(rel.id, page);
      if (IsResident(ckey)) {
        TouchEntry(ckey);
        ++out.pages_hit;
      } else if (IsResident(pkey)) {
        TouchEntry(pkey);
        ++out.pages_hit;
      } else {
        Insert(pkey, 1);
        ++out.pages_missed;
      }
    }
    return out;
  }

  Pages DirtyRandom(const RelationMeta& rel, int n_pages, Rng& rng,
                    const AccessSkew& skew = {}) {
    Pages newly_dirtied = 0;
    if (rel.pages <= 0) {
      return newly_dirtied;
    }
    for (int i = 0; i < n_pages; ++i) {
      const uint64_t page = skew.SamplePage(rng, rel.pages);
      const uint64_t chunk = page / static_cast<uint64_t>(chunk_pages_);
      const uint64_t ckey = ChunkKey(rel.id, chunk);
      const uint64_t pkey = PageKey(rel.id, page);
      if (IsResident(ckey)) {
        TouchEntry(ckey);
      } else if (IsResident(pkey)) {
        TouchEntry(pkey);
      } else {
        Insert(pkey, 1);
      }
      if (dirty_index_.find(pkey) == dirty_index_.end()) {
        dirty_fifo_.push_back(pkey);
        dirty_index_[pkey] = std::prev(dirty_fifo_.end());
        ++newly_dirtied;
      }
    }
    return newly_dirtied;
  }

  Pages TakeDirtyForFlush(Pages max_pages) {
    Pages taken = 0;
    while (taken < max_pages && !dirty_fifo_.empty()) {
      const uint64_t key = dirty_fifo_.front();
      dirty_fifo_.pop_front();
      dirty_index_.erase(key);
      ++taken;
    }
    return taken;
  }

  Pages used_pages() const { return used_pages_; }

 private:
  static uint64_t ChunkKey(RelationId rel, uint64_t chunk) {
    return (1ULL << 63) | (static_cast<uint64_t>(rel) << 40) | chunk;
  }
  static uint64_t PageKey(RelationId rel, uint64_t page) {
    return (static_cast<uint64_t>(rel) << 40) | page;
  }

  struct Entry {
    uint64_t key;
    Pages weight;
  };

  bool IsResident(uint64_t key) const { return index_.find(key) != index_.end(); }

  void TouchEntry(uint64_t key) {
    auto it = index_.find(key);
    lru_.splice(lru_.begin(), lru_, it->second);
  }

  void Insert(uint64_t key, Pages weight) {
    lru_.push_front(Entry{key, weight});
    index_[key] = lru_.begin();
    used_pages_ += weight;
    while (used_pages_ > capacity_pages_ && !lru_.empty()) {
      const Entry victim = lru_.back();
      lru_.pop_back();
      index_.erase(victim.key);
      used_pages_ -= victim.weight;
    }
  }

  Pages capacity_pages_;
  Pages chunk_pages_;
  Pages used_pages_ = 0;

  std::list<Entry> lru_;  // front = MRU, back = LRU
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  std::list<uint64_t> dirty_fifo_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> dirty_index_;
};

}  // namespace legacy
}  // namespace tashkent

#endif  // BENCH_LEGACY_BASELINE_H_
