// Figure 7: TPC-W throughput with MALB-SC + update filtering.
// MidDB 1.8 GB, RAM 512 MB, 16 replicas, ordering mix.
// Paper: Single 3, LeastConnections 37, LARD 50, MALB-SC 76,
//        MALB-SC+UpdateFiltering 113 tps (0.349 s response).
#include "bench/bench_common.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

void Run() {
  const Workload w = BuildTpcw(kTpcwMediumEbs);
  const ClusterConfig config = MakeClusterConfig(512 * kMiB);
  const int clients = CalibratedClients(w, kTpcwOrdering, config);

  const ExperimentResult single = RunStandalone(w, kTpcwOrdering, config, clients);
  const auto lc = bench::RunPolicy(w, kTpcwOrdering, Policy::kLeastConnections, config, clients);
  const auto lard = bench::RunPolicy(w, kTpcwOrdering, Policy::kLard, config, clients);
  const auto malb = bench::RunPolicy(w, kTpcwOrdering, Policy::kMalbSC, config, clients);
  const auto uf = bench::RunPolicy(w, kTpcwOrdering, Policy::kMalbSC,
                                   bench::WithFiltering(config), clients, Seconds(400.0));

  PrintHeader("Figure 7: TPC-W throughput of MALB-SC + UpdateFiltering",
              "MidDB 1.8GB, RAM 512MB, 16 replicas, ordering mix");
  PrintTpsRow("Single", 3, single.tps, single.mean_response_s);
  PrintTpsRow("LeastConnections", 37, lc.tps, lc.mean_response_s);
  PrintTpsRow("LARD", 50, lard.tps, lard.mean_response_s);
  PrintTpsRow("MALB-SC", 76, malb.tps, malb.mean_response_s);
  PrintTpsRow("MALB-SC+UpdateFiltering", 113, uf.tps, uf.mean_response_s);
  PrintRatio("UF / MALB-SC", 113.0 / 76.0, uf.tps / malb.tps);
  PrintRatio("UF / LeastConnections", 113.0 / 37.0, uf.tps / lc.tps);
  PrintRatio("UF / Single", 37.0, uf.tps / single.tps);
}

}  // namespace
}  // namespace tashkent

int main() {
  tashkent::Run();
  return 0;
}
