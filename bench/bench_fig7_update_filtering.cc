// Figure 7: TPC-W throughput with MALB-SC + update filtering.
// MidDB 1.8 GB, RAM 512 MB, 16 replicas, ordering mix.
// Paper: Single 3, LeastConnections 37, LARD 50, MALB-SC 76,
//        MALB-SC+UpdateFiltering 113 tps (0.349 s response).
#include "bench/bench_common.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

void Run(ResultSink& out) {
  const Workload w = BuildTpcw(kTpcwMediumEbs);
  const ClusterConfig config = MakeClusterConfig(512 * kMiB);
  const int clients = CalibratedClients(w, kTpcwOrdering, config);

  const ExperimentResult single = RunStandalone(w, kTpcwOrdering, config, clients);
  const auto lc = bench::RunPolicy(w, kTpcwOrdering, "LeastConnections", config, clients);
  const auto lard = bench::RunPolicy(w, kTpcwOrdering, "LARD", config, clients);
  const auto malb = bench::RunPolicy(w, kTpcwOrdering, "MALB-SC", config, clients);
  const auto uf = bench::RunPolicy(w, kTpcwOrdering, "MALB-SC", bench::WithFiltering(config),
                                   clients, Seconds(400.0));

  out.Begin("Figure 7: TPC-W throughput of MALB-SC + UpdateFiltering",
            "MidDB 1.8GB, RAM 512MB, 16 replicas, ordering mix");
  out.AddRun(bench::Rec("Single", "", w, kTpcwOrdering, single, 3));
  out.AddRun(bench::Rec("LeastConnections", "LeastConnections", w, kTpcwOrdering, lc, 37));
  out.AddRun(bench::Rec("LARD", "LARD", w, kTpcwOrdering, lard, 50));
  out.AddRun(bench::Rec("MALB-SC", "MALB-SC", w, kTpcwOrdering, malb, 76));
  out.AddRun(bench::Rec("MALB-SC+UpdateFiltering", "MALB-SC", w, kTpcwOrdering, uf, 113));
  out.AddRatio("UF / MALB-SC", 113.0 / 76.0, uf.tps / malb.tps);
  out.AddRatio("UF / LeastConnections", 113.0 / 37.0, uf.tps / lc.tps);
  out.AddRatio("UF / Single", 37.0, uf.tps / single.tps);
}

}  // namespace
}  // namespace tashkent

int main(int argc, char** argv) {
  tashkent::bench::Harness harness(argc, argv, "fig7_update_filtering");
  tashkent::Run(harness.out());
  return 0;
}
