// Campaign "fig7" — Figure 7: TPC-W throughput with MALB-SC + update
// filtering. MidDB 1.8 GB, RAM 512 MB, 16 replicas, ordering mix.
// Paper: Single 3, LeastConnections 37, LARD 50, MALB-SC 76,
//        MALB-SC+UpdateFiltering 113 tps (0.349 s response).
#include "bench/bench_common.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

Workload Mid() { return BuildTpcw(kTpcwMediumEbs); }

std::vector<CampaignCell> Cells() {
  bench::CellOptions uf;
  uf.filtering = true;
  uf.warmup = Seconds(400.0);
  return {
      bench::StandaloneCell("single", Mid, kTpcwOrdering),
      bench::PolicyCell("lc", Mid, kTpcwOrdering, "LeastConnections"),
      bench::PolicyCell("lard", Mid, kTpcwOrdering, "LARD"),
      bench::PolicyCell("malb-sc", Mid, kTpcwOrdering, "MALB-SC"),
      bench::PolicyCell("malb-sc-uf", Mid, kTpcwOrdering, "MALB-SC", uf),
  };
}

void Report(const CampaignOutputs& r, ResultSink& out) {
  const ExperimentResult& single = r.Result("single");
  const ExperimentResult& lc = r.Result("lc");
  const ExperimentResult& malb = r.Result("malb-sc");
  const ExperimentResult& uf = r.Result("malb-sc-uf");

  out.Begin("Figure 7: TPC-W throughput of MALB-SC + UpdateFiltering",
            "MidDB 1.8GB, RAM 512MB, 16 replicas, ordering mix");
  out.AddRun(bench::RecOf("Single", r.Get("single"), 3));
  out.AddRun(bench::RecOf("LeastConnections", r.Get("lc"), 37));
  out.AddRun(bench::RecOf("LARD", r.Get("lard"), 50));
  out.AddRun(bench::RecOf("MALB-SC", r.Get("malb-sc"), 76));
  out.AddRun(bench::RecOf("MALB-SC+UpdateFiltering", r.Get("malb-sc-uf"), 113));
  out.AddRatio("UF / MALB-SC", 113.0 / 76.0, uf.tps / malb.tps);
  out.AddRatio("UF / LeastConnections", 113.0 / 37.0, uf.tps / lc.tps);
  out.AddRatio("UF / Single", 37.0, uf.tps / single.tps);
}

RegisterCampaign fig7{{"fig7", "Figure 7", "TPC-W throughput of MALB-SC + UpdateFiltering",
                       "MidDB 1.8GB, RAM 512MB, 16 replicas, ordering mix", Cells, Report}};

}  // namespace
}  // namespace tashkent
