// Figure 4: RUBiS comparison of load-balancing methods.
// DB 2.2 GB, RAM 512 MB, 16 replicas, bidding mix.
// Paper: Single 3, LeastConnections 31, LARD 34, MALB-SC 43 tps
//        (MALB-SC +39% over LC, +26% over LARD).
#include "bench/bench_common.h"
#include "src/workload/rubis.h"

namespace tashkent {
namespace {

void Run() {
  const Workload w = BuildRubis();
  const ClusterConfig config = MakeClusterConfig(512 * kMiB);
  const int clients = CalibratedClients(w, kRubisBidding, config);

  const ExperimentResult single = RunStandalone(w, kRubisBidding, config, clients);
  const auto lc = bench::RunPolicy(w, kRubisBidding, Policy::kLeastConnections, config, clients);
  const auto lard = bench::RunPolicy(w, kRubisBidding, Policy::kLard, config, clients);
  const auto malb = bench::RunPolicy(w, kRubisBidding, Policy::kMalbSC, config, clients);

  PrintHeader("Figure 4: RUBiS comparison of methods",
              "DB 2.2GB, RAM 512MB, 16 replicas, bidding mix");
  PrintTpsRow("Single", 3, single.tps, single.mean_response_s);
  PrintTpsRow("LeastConnections", 31, lc.tps, lc.mean_response_s);
  PrintTpsRow("LARD", 34, lard.tps, lard.mean_response_s);
  PrintTpsRow("MALB-SC", 43, malb.tps, malb.mean_response_s);
  PrintRatio("MALB-SC / LeastConnections", 43.0 / 31.0, malb.tps / lc.tps);
  PrintRatio("MALB-SC / LARD", 43.0 / 34.0, malb.tps / lard.tps);

  std::printf("\nMALB-SC groupings (cf. Table 4):\n");
  PrintGroups(malb.groups);
}

}  // namespace
}  // namespace tashkent

int main() {
  tashkent::Run();
  return 0;
}
