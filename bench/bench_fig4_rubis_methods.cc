// Figure 4: RUBiS comparison of load-balancing methods.
// DB 2.2 GB, RAM 512 MB, 16 replicas, bidding mix.
// Paper: Single 3, LeastConnections 31, LARD 34, MALB-SC 43 tps
//        (MALB-SC +39% over LC, +26% over LARD).
#include "bench/bench_common.h"
#include "src/workload/rubis.h"

namespace tashkent {
namespace {

void Run(ResultSink& out) {
  const Workload w = BuildRubis();
  const ClusterConfig config = MakeClusterConfig(512 * kMiB);
  const int clients = CalibratedClients(w, kRubisBidding, config);

  const ExperimentResult single = RunStandalone(w, kRubisBidding, config, clients);
  const auto lc = bench::RunPolicy(w, kRubisBidding, "LeastConnections", config, clients);
  const auto lard = bench::RunPolicy(w, kRubisBidding, "LARD", config, clients);
  const auto malb = bench::RunPolicy(w, kRubisBidding, "MALB-SC", config, clients);

  out.Begin("Figure 4: RUBiS comparison of methods",
            "DB 2.2GB, RAM 512MB, 16 replicas, bidding mix");
  out.AddRun(bench::Rec("Single", "", w, kRubisBidding, single, 3));
  out.AddRun(bench::Rec("LeastConnections", "LeastConnections", w, kRubisBidding, lc, 31));
  out.AddRun(bench::Rec("LARD", "LARD", w, kRubisBidding, lard, 34));
  out.AddRun(bench::Rec("MALB-SC", "MALB-SC", w, kRubisBidding, malb, 43));
  out.AddRatio("MALB-SC / LeastConnections", 43.0 / 31.0, malb.tps / lc.tps);
  out.AddRatio("MALB-SC / LARD", 43.0 / 34.0, malb.tps / lard.tps);
  out.AddGroups("MALB-SC groupings (cf. Table 4)", malb.groups);
}

}  // namespace
}  // namespace tashkent

int main(int argc, char** argv) {
  tashkent::bench::Harness harness(argc, argv, "fig4_rubis_methods");
  tashkent::Run(harness.out());
  return 0;
}
