// Campaign "fig4" — Figure 4: RUBiS comparison of load-balancing methods.
// DB 2.2 GB, RAM 512 MB, 16 replicas, bidding mix.
// Paper: Single 3, LeastConnections 31, LARD 34, MALB-SC 43 tps
//        (MALB-SC +39% over LC, +26% over LARD).
#include "bench/bench_common.h"
#include "src/workload/rubis.h"

namespace tashkent {
namespace {

Workload Rubis() { return BuildRubis(); }

std::vector<CampaignCell> Cells() {
  return {
      bench::StandaloneCell("single", Rubis, kRubisBidding),
      bench::PolicyCell("lc", Rubis, kRubisBidding, "LeastConnections"),
      bench::PolicyCell("lard", Rubis, kRubisBidding, "LARD"),
      bench::PolicyCell("malb-sc", Rubis, kRubisBidding, "MALB-SC"),
  };
}

void Report(const CampaignOutputs& r, ResultSink& out) {
  const ExperimentResult& lc = r.Result("lc");
  const ExperimentResult& lard = r.Result("lard");
  const ExperimentResult& malb = r.Result("malb-sc");

  out.Begin("Figure 4: RUBiS comparison of methods",
            "DB 2.2GB, RAM 512MB, 16 replicas, bidding mix");
  out.AddRun(bench::RecOf("Single", r.Get("single"), 3));
  out.AddRun(bench::RecOf("LeastConnections", r.Get("lc"), 31));
  out.AddRun(bench::RecOf("LARD", r.Get("lard"), 34));
  out.AddRun(bench::RecOf("MALB-SC", r.Get("malb-sc"), 43));
  out.AddRatio("MALB-SC / LeastConnections", 43.0 / 31.0, malb.tps / lc.tps);
  out.AddRatio("MALB-SC / LARD", 43.0 / 34.0, malb.tps / lard.tps);
  out.AddGroups("MALB-SC groupings (cf. Table 4)", malb.groups);
}

RegisterCampaign fig4{{"fig4", "Figure 4", "RUBiS comparison of methods",
                       "DB 2.2GB, RAM 512MB, 16 replicas, bidding mix", Cells, Report}};

}  // namespace
}  // namespace tashkent
