// Campaign "table3" — Table 3: RUBiS average disk I/O per transaction (per
// replica). Paper: writes 11 KB all methods; reads 162 / 149 / 111 KB
// (LeastConnections / LARD / MALB-SC); read fraction 1.00 / 0.92 / 0.69.
#include "bench/bench_common.h"
#include "src/workload/rubis.h"

namespace tashkent {
namespace {

Workload Rubis() { return BuildRubis(); }

std::vector<CampaignCell> Cells() {
  return {
      bench::PolicyCell("lc", Rubis, kRubisBidding, "LeastConnections"),
      bench::PolicyCell("lard", Rubis, kRubisBidding, "LARD"),
      bench::PolicyCell("malb-sc", Rubis, kRubisBidding, "MALB-SC"),
  };
}

void Report(const CampaignOutputs& r, ResultSink& out) {
  const ExperimentResult& lc = r.Result("lc");
  const ExperimentResult& lard = r.Result("lard");
  const ExperimentResult& malb = r.Result("malb-sc");

  out.Begin("Table 3: RUBiS average disk I/O per transaction",
            "DB 2.2GB, RAM 512MB, 16 replicas, bidding mix");
  out.AddRun(bench::RecOf("LeastConnections", r.Get("lc"), 31, 11, 162));
  out.AddRun(bench::RecOf("LARD", r.Get("lard"), 34, 11, 149));
  out.AddRun(bench::RecOf("MALB-SC", r.Get("malb-sc"), 43, 11, 111));
  out.AddRatio("LARD reads / LC reads (paper 0.92)", 0.92,
               lard.read_kb_per_txn / lc.read_kb_per_txn);
  out.AddRatio("MALB-SC reads / LC reads (paper 0.69)", 0.69,
               malb.read_kb_per_txn / lc.read_kb_per_txn);
}

RegisterCampaign table3{{"table3", "Table 3", "RUBiS average disk I/O per transaction",
                         "DB 2.2GB, RAM 512MB, 16 replicas, bidding mix", Cells, Report}};

}  // namespace
}  // namespace tashkent
