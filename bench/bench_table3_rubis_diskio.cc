// Table 3: RUBiS average disk I/O per transaction (per replica).
// Paper: writes 11 KB all methods; reads 162 / 149 / 111 KB
// (LeastConnections / LARD / MALB-SC); read fraction 1.00 / 0.92 / 0.69.
#include "bench/bench_common.h"
#include "src/workload/rubis.h"

namespace tashkent {
namespace {

void Run(ResultSink& out) {
  const Workload w = BuildRubis();
  const ClusterConfig config = MakeClusterConfig(512 * kMiB);
  const int clients = CalibratedClients(w, kRubisBidding, config);

  const auto lc = bench::RunPolicy(w, kRubisBidding, "LeastConnections", config, clients);
  const auto lard = bench::RunPolicy(w, kRubisBidding, "LARD", config, clients);
  const auto malb = bench::RunPolicy(w, kRubisBidding, "MALB-SC", config, clients);

  out.Begin("Table 3: RUBiS average disk I/O per transaction",
            "DB 2.2GB, RAM 512MB, 16 replicas, bidding mix");
  out.AddRun(
      bench::Rec("LeastConnections", "LeastConnections", w, kRubisBidding, lc, 31, 11, 162));
  out.AddRun(bench::Rec("LARD", "LARD", w, kRubisBidding, lard, 34, 11, 149));
  out.AddRun(bench::Rec("MALB-SC", "MALB-SC", w, kRubisBidding, malb, 43, 11, 111));
  out.AddRatio("LARD reads / LC reads (paper 0.92)", 0.92,
               lard.read_kb_per_txn / lc.read_kb_per_txn);
  out.AddRatio("MALB-SC reads / LC reads (paper 0.69)", 0.69,
               malb.read_kb_per_txn / lc.read_kb_per_txn);
}

}  // namespace
}  // namespace tashkent

int main(int argc, char** argv) {
  tashkent::bench::Harness harness(argc, argv, "table3_rubis_diskio");
  tashkent::Run(harness.out());
  return 0;
}
