// Table 3: RUBiS average disk I/O per transaction (per replica).
// Paper: writes 11 KB all methods; reads 162 / 149 / 111 KB
// (LeastConnections / LARD / MALB-SC); read fraction 1.00 / 0.92 / 0.69.
#include "bench/bench_common.h"
#include "src/workload/rubis.h"

namespace tashkent {
namespace {

void Run() {
  const Workload w = BuildRubis();
  const ClusterConfig config = MakeClusterConfig(512 * kMiB);
  const int clients = CalibratedClients(w, kRubisBidding, config);

  const auto lc = bench::RunPolicy(w, kRubisBidding, Policy::kLeastConnections, config, clients);
  const auto lard = bench::RunPolicy(w, kRubisBidding, Policy::kLard, config, clients);
  const auto malb = bench::RunPolicy(w, kRubisBidding, Policy::kMalbSC, config, clients);

  PrintHeader("Table 3: RUBiS average disk I/O per transaction",
              "DB 2.2GB, RAM 512MB, 16 replicas, bidding mix");
  PrintIoRow("LeastConnections", 11, 162, lc.write_kb_per_txn, lc.read_kb_per_txn);
  PrintIoRow("LARD", 11, 149, lard.write_kb_per_txn, lard.read_kb_per_txn);
  PrintIoRow("MALB-SC", 11, 111, malb.write_kb_per_txn, malb.read_kb_per_txn);
  std::printf("\nread fraction relative to LeastConnections:\n");
  PrintRatio("LARD / LC (paper 0.92)", 0.92, lard.read_kb_per_txn / lc.read_kb_per_txn);
  PrintRatio("MALB-SC / LC (paper 0.69)", 0.69, malb.read_kb_per_txn / lc.read_kb_per_txn);
}

}  // namespace
}  // namespace tashkent

int main() {
  tashkent::Run();
  return 0;
}
