// Campaign "skew" — the fluid client model at scale: Zipfian key popularity,
// flash crowds, diurnal curves and a mix spike on 64-256 replica cells with
// 100k-1M modeled clients (src/workload/fluid_pool.h). Reports the load-shape
// columns (unevenness, miss_rate, realloc_moves) next to the usual
// throughput/response rows.
//
// The "inert/4r" cell is the degenerate-parameter gate: one cell runs the
// SAME seed twice — once "armed" with every new knob engaged at values that
// must change nothing (workload skew equal to the replica default, zipf_s 0,
// a SwitchMixAt to the already-active mix, SetPopulation calls that restate
// the current population) and once "plain" with none of the new surface
// touched. Report() compares every reported field and throws on any
// difference, which fails the cell hard in CI (`tashkent_bench` exits
// non-zero); tests/fluid_model_test.cc additionally pins the two rendered
// run records byte-for-byte. This is what lets the fluid/skew machinery ship
// inside an otherwise byte-frozen simulator: armed-but-degenerate is
// provably the old model.
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "bench/bench_common.h"
#include "src/workload/rubis.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

// --- workload factories ------------------------------------------------------

Workload Small() { return BuildTpcw(kTpcwSmallEbs); }

Workload SmallZipf(double s) {
  Workload w = BuildTpcw(kTpcwSmallEbs);
  AccessSkew skew;
  skew.zipf_s = s;
  w.skew = skew;
  return w;
}

Workload SmallZipf08() { return SmallZipf(0.8); }
Workload SmallZipf12() { return SmallZipf(1.2); }

// --- cell options ------------------------------------------------------------

// Scale cells: 64 replicas x 1563 clients/replica ~= 100k modeled clients.
// The fluid model keeps the event rate proportional to throughput (pop /
// think), not population, so a 100 s think time holds the offered load near
// 1k tps and the cell at CI scale.
constexpr size_t kScaleReplicas = 64;
constexpr int kScaleClientsPerReplica = 1563;
constexpr double kScaleThinkS = 100.0;

bench::CellOptions FluidOptions(size_t replicas, int clients_per_replica, double think_s) {
  bench::CellOptions opts;
  opts.ram = 256 * kMiB;
  opts.replicas = replicas;
  opts.clients = clients_per_replica;  // fixed: no calibration sweep at this scale
  opts.warmup = Seconds(20.0);
  opts.measure = Seconds(60.0);
  opts.tweak = [think_s](ClusterConfig& config) {
    config.fluid_clients = true;
    config.mean_think = Seconds(think_s);
  };
  return opts;
}

// --- the inert dual-run cell -------------------------------------------------

bench::CellOptions InertOptions() {
  bench::CellOptions opts;
  opts.ram = 256 * kMiB;
  opts.replicas = 4;
  opts.clients = 4;
  opts.warmup = Seconds(30.0);
  opts.measure = Seconds(60.0);
  return opts;
}

// Runs the armed and plain clusters with the SAME seed inside one campaign
// cell (CellSeed depends on the cell id, so two cells could never share a
// seed) and returns both measures under the labels "armed" / "plain".
CellOutput RunInertPair(uint64_t seed) {
  const bench::CellOptions opts = InertOptions();
  const size_t population =
      static_cast<size_t>(opts.clients) * opts.replicas;  // restated, never changed

  // Plain: the pre-skew model, no new surface touched.
  const Workload plain = Small();
  ClusterConfig plain_config = bench::CellConfig(seed, opts);
  plain_config.clients_per_replica = opts.clients;
  ScenarioResult plain_result = ScenarioBuilder()
                                    .Warmup(opts.warmup)
                                    .Measure(opts.measure, "plain")
                                    .Run(plain, kTpcwOrdering, "MALB-SC", plain_config);

  // Armed: every new knob engaged at its degenerate value. The workload skew
  // restates the replica default (zipf_s 0 keeps the hot/cold draw sequence),
  // the population verbs restate the constructed population, and the mix
  // switch re-selects the active mix. The scheduled verbs use off-round
  // offsets so their (draw-free) events never tie with a periodic daemon.
  Workload armed = Small();
  ClusterConfig armed_config = bench::CellConfig(seed, opts);
  armed_config.clients_per_replica = opts.clients;
  armed.skew = armed_config.replica.skew;
  ScenarioResult armed_result = ScenarioBuilder()
                                    .SetPopulation(population)
                                    .Warmup(opts.warmup)
                                    .SwitchMixAt(Seconds(10.5), kTpcwOrdering)
                                    .SetPopulationAt(Seconds(12.25), population)
                                    .Measure(opts.measure, "armed")
                                    .Run(armed, kTpcwOrdering, "MALB-SC", armed_config);

  CellOutput out;
  out.workload = armed.name;
  out.mix = kTpcwOrdering;
  out.policy = "MALB-SC";
  out.executed_events = armed_result.executed_events + plain_result.executed_events;
  out.scenario = std::move(armed_result);
  out.scenario.measures.push_back(
      {"plain", Seconds(0.0), std::move(plain_result.measures.front().result)});
  return out;
}

// Throws std::runtime_error naming the first differing field. Exact (==)
// comparison on doubles is deliberate: the contract is byte-identity of the
// rendered run records, not closeness.
void RequireIdentical(const ExperimentResult& a, const ExperimentResult& b) {
  const auto fail = [](const std::string& field) {
    throw std::runtime_error("inert skew cell: armed and plain runs differ on '" + field +
                             "' — the degenerate parameters are not inert");
  };
  if (a.tps != b.tps) fail("tps");
  if (a.mean_response_s != b.mean_response_s) fail("mean_response_s");
  if (a.p95_response_s != b.p95_response_s) fail("p95_response_s");
  if (a.committed != b.committed) fail("committed");
  if (a.aborted != b.aborted) fail("aborted");
  if (a.read_kb_per_txn != b.read_kb_per_txn) fail("read_kb_per_txn");
  if (a.write_kb_per_txn != b.write_kb_per_txn) fail("write_kb_per_txn");
  if (a.rejected != b.rejected) fail("rejected");
  if (a.availability != b.availability) fail("availability");
  if (a.recoveries != b.recoveries) fail("recoveries");
  if (a.recovery_lag_s != b.recovery_lag_s) fail("recovery_lag_s");
  if (a.replay_applied != b.replay_applied) fail("replay_applied");
  if (a.replay_filtered != b.replay_filtered) fail("replay_filtered");
  if (a.log_chunks_hwm != b.log_chunks_hwm) fail("log_chunks_hwm");
  if (a.arena_bytes_hwm != b.arena_bytes_hwm) fail("arena_bytes_hwm");
  if (a.joins != b.joins) fail("joins");
  if (a.join_latency_s != b.join_latency_s) fail("join_latency_s");
  if (a.unevenness != b.unevenness) fail("unevenness");
  if (a.miss_rate != b.miss_rate) fail("miss_rate");
  if (a.realloc_moves != b.realloc_moves) fail("realloc_moves");
  if (a.clients_modeled != b.clients_modeled) fail("clients_modeled");
  if (a.fluid != b.fluid) fail("fluid");
  if (a.groups.size() != b.groups.size()) fail("groups");
  for (size_t g = 0; g < a.groups.size(); ++g) {
    if (a.groups[g].replicas != b.groups[g].replicas || a.groups[g].types != b.groups[g].types) {
      fail("groups");
    }
  }
}

// --- grid --------------------------------------------------------------------

std::vector<CampaignCell> Cells() {
  std::vector<CampaignCell> cells;

  CampaignCell inert;
  inert.id = "inert/4r";
  inert.run = RunInertPair;
  cells.push_back(std::move(inert));

  // Zipf sweep: same 100k-client fluid cell at s = 0 (uniform hot/cold
  // default), 0.8 and 1.2, to read unevenness/miss_rate against skew.
  cells.push_back(bench::PolicyCell(
      "uniform/64r-100k", Small, kTpcwOrdering, "MALB-SC",
      FluidOptions(kScaleReplicas, kScaleClientsPerReplica, kScaleThinkS)));
  cells.push_back(bench::PolicyCell(
      "zipf08/64r-100k", SmallZipf08, kTpcwOrdering, "MALB-SC",
      FluidOptions(kScaleReplicas, kScaleClientsPerReplica, kScaleThinkS)));
  cells.push_back(bench::PolicyCell(
      "zipf12/64r-100k", SmallZipf12, kTpcwOrdering, "MALB-SC",
      FluidOptions(kScaleReplicas, kScaleClientsPerReplica, kScaleThinkS)));

  // Flash crowd: 256 replicas, read-only RUBiS browsing, 500k clients
  // doubling to 1M ten seconds into the flash window. Read-only keeps the
  // certifier quiet, so the cell exercises pure routing + buffer-pool scale.
  cells.push_back(bench::ScenarioCell(
      "flash/256r-1m", BuildRubis, kRubisBrowsing, "MALB-SC",
      ScenarioBuilder()
          .Warmup(Seconds(20.0))
          .Measure(Seconds(30.0), "before")
          .SetPopulationAt(Seconds(10.0), 1000000)
          .Measure(Seconds(60.0), "flash"),
      FluidOptions(256, 1954, 500.0)));  // 1954 * 256 ~= 500k baseline

  // Diurnal curve: population steps 50k -> 80k -> 100k -> 60k across one
  // measured window (scheduled at off-round offsets inside it).
  cells.push_back(bench::ScenarioCell(
      "diurnal/64r-100k", BuildRubis, kRubisBidding, "MALB-SC",
      ScenarioBuilder()
          .Warmup(Seconds(20.0))
          .SetPopulationAt(Seconds(15.0), 80000)
          .SetPopulationAt(Seconds(30.0), 100000)
          .SetPopulationAt(Seconds(45.0), 60000)
          .Measure(Seconds(60.0), "measure"),
      FluidOptions(kScaleReplicas, 782, kScaleThinkS)));  // 782 * 64 ~= 50k baseline

  // TPC-W shopping spike: browsing flips to shopping mid-window (the
  // Figure 6 shape at fluid scale).
  cells.push_back(bench::ScenarioCell(
      "spike/64r-100k", Small, kTpcwBrowsing, "MALB-SC",
      ScenarioBuilder()
          .Warmup(Seconds(20.0))
          .SwitchMixAt(Seconds(20.0), kTpcwShopping)
          .Measure(Seconds(60.0), "measure"),
      FluidOptions(kScaleReplicas, kScaleClientsPerReplica, kScaleThinkS)));

  return cells;
}

void Report(const CampaignOutputs& r, ResultSink& out) {
  out.Begin("Skew: fluid clients, Zipfian popularity, flash crowds",
            "SmallDB/RUBiS, 64-256 replicas, 100k-1M fluid clients, MALB-SC");

  const CellOutput& inert = r.Get("inert/4r");
  RequireIdentical(inert.Result("armed"), inert.Result("plain"));
  out.AddRun(bench::RecOf("inert armed (degenerate knobs)", inert, 0, 0, 0, "armed"));
  out.AddRun(bench::RecOf("inert plain (pre-skew model)", inert, 0, 0, 0, "plain"));
  out.AddScalar("inert pair identical", 1.0);

  const char* zipf_cells[] = {"uniform/64r-100k", "zipf08/64r-100k", "zipf12/64r-100k"};
  const char* zipf_labels[] = {"fluid 100k uniform", "fluid 100k zipf 0.8",
                               "fluid 100k zipf 1.2"};
  for (size_t i = 0; i < 3; ++i) {
    const CellOutput& cell = r.Get(zipf_cells[i]);
    out.AddRun(bench::RecOf(zipf_labels[i], cell));
    const ExperimentResult& res = cell.Result();
    const std::string key(zipf_labels[i]);
    out.AddScalar(key + " unevenness", res.unevenness);
    out.AddScalar(key + " miss rate", res.miss_rate);
    out.AddScalar(key + " realloc moves", static_cast<double>(res.realloc_moves));
  }

  const CellOutput& flash = r.Get("flash/256r-1m");
  out.AddRun(bench::RecOf("flash 256r before (500k)", flash, 0, 0, 0, "before"));
  out.AddRun(bench::RecOf("flash 256r crowd (1M)", flash, 0, 0, 0, "flash"));
  out.AddScalar("flash crowd tps gain",
                flash.Result("before").tps > 0.0
                    ? flash.Result("flash").tps / flash.Result("before").tps
                    : 0.0);

  out.AddRun(bench::RecOf("diurnal 64r (50k-100k)", r.Get("diurnal/64r-100k")));
  out.AddRun(bench::RecOf("spike 64r browsing->shopping", r.Get("spike/64r-100k")));
  out.AddTimeline("flash/256r-1m", flash.scenario.timeline, flash.scenario.timeline_bucket);
}

RegisterCampaign skew{{"skew", "", "Skew: fluid clients, Zipfian popularity, flash crowds",
                       "SmallDB/RUBiS, 64-256 replicas, 100k-1M fluid clients, MALB-SC", Cells,
                       Report}};

}  // namespace
}  // namespace tashkent
