// Campaign "faults" — the certifier fabric under injected message faults and
// certifier failover: loss sweeps, a duplication/delay storm, scripted link
// partitions, and crash/failover cycles with epoch fencing. Reports the
// retry-protocol and availability metrics (timeouts, retries, fences, dedup
// hits, write-queue high-water mark, certifier downtime, takeover latency)
// as campaign scalars — the per-run JSON schema stays frozen.
//
// Two CI-gated invariants ride on this campaign:
//
//   * Zero lost or duplicated commits, under ANY fault plan. Every cell runs
//     the cluster directly and checks, after the scenario:
//         sum(proxy lifetime update commits) <= certifier certified count
//         certified - committed <= sum(proxy max_in_flight)
//     The lower bound catches a duplicated commit (a client acknowledged
//     twice, or a retry certified twice past the dedup window); the upper
//     bound catches a lost one (certified but never acknowledged — only
//     in-flight certifications may be outstanding at collection). Violations
//     throw, which fails the cell and the bench run. The cells require
//     max_attempts = 0 (retry forever) and no replica kills, so no
//     certified-then-client-aborted transaction can blur the bound.
//
//   * Fault-plan-off is byte-inert. The "inert/pair" cell runs the SAME seed
//     twice — "plain" with no fault surface touched, "armed" with the retry
//     protocol enabled under an empty FaultPlan — and requires every
//     reported field AND the executed-event count to match exactly. The
//     timeout each armed certification schedules is always cancelled on the
//     response, and cancelled events do not count as executed, so the armed
//     run is provably the old proxy. scripts/ci.sh additionally compares the
//     two rendered run records byte-for-byte (minus the label).
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

Workload Small() { return BuildTpcw(kTpcwSmallEbs); }

constexpr size_t kReplicas = 6;
constexpr int kClients = 6;

// Fixed client population (no calibration sweep — fault cells measure the
// retry protocol, not peak throughput) on a small cluster.
bench::CellOptions FaultOptions() {
  bench::CellOptions opts;
  opts.ram = 256 * kMiB;
  opts.replicas = kReplicas;
  opts.clients = kClients;
  opts.warmup = Seconds(30.0);
  opts.measure = Seconds(120.0);
  return opts;
}

RetryPolicy FaultRetry() {
  RetryPolicy retry;
  retry.enabled = true;
  retry.timeout = Millis(2);
  retry.backoff_base = Micros(500);
  retry.backoff_factor = 2.0;
  retry.backoff_max = Millis(50);
  retry.jitter = 0.25;
  retry.max_attempts = 0;  // retry forever — required for the exact invariant
  return retry;
}

FaultPlan Loss(double p) {
  FaultPlan plan;
  plan.drop = p;
  return plan;
}

// The ASan fault-storm shape: losses, duplicates and delays all at once, with
// the extra delay routinely exceeding the 2 ms attempt timeout so late
// responses race their own retries into the dedup window.
FaultPlan Storm(double drop, double duplicate, double delay_p, SimDuration delay_mean) {
  FaultPlan plan;
  plan.drop = drop;
  plan.duplicate = duplicate;
  plan.delay_probability = delay_p;
  plan.delay_mean = delay_mean;
  return plan;
}

// Throws unless the commit ledger balances: nothing certified was lost,
// nothing committed twice (see the file comment).
void RequireZeroLoss(const Cluster& cluster, const std::string& cell, CellOutput& out) {
  uint64_t completed = 0;
  uint64_t in_flight_bound = 0;
  for (const auto& proxy : cluster.proxies()) {
    completed += proxy->lifetime_update_commits();
    in_flight_bound += static_cast<uint64_t>(proxy->max_in_flight());
  }
  const uint64_t certified = cluster.certifier().certified_count();
  if (completed > certified) {
    throw std::runtime_error("faults/" + cell + ": " + std::to_string(completed) +
                             " commits acknowledged but only " + std::to_string(certified) +
                             " certified — a retry was certified (committed) twice");
  }
  if (certified - completed > in_flight_bound) {
    throw std::runtime_error("faults/" + cell + ": " + std::to_string(certified - completed) +
                             " certified commits never reached a client (bound " +
                             std::to_string(in_flight_bound) + ") — commits were lost");
  }
  out.scalars.emplace_back("lifetime committed", static_cast<double>(completed));
  out.scalars.emplace_back("lifetime certified", static_cast<double>(certified));
  out.scalars.emplace_back("inflight bound", static_cast<double>(in_flight_bound));
}

// One fault cell: direct Cluster run (the invariant needs the proxies and the
// certifier after the scenario), scripted by `script` on top of the standard
// warmup+measure shape already present in `script`.
CampaignCell FaultCell(std::string id, FaultPlan plan, ScenarioBuilder script) {
  CampaignCell cell;
  cell.id = id;
  cell.run = [id = std::move(id), plan = std::move(plan),
              script = std::move(script)](uint64_t seed) {
    const bench::CellOptions opts = FaultOptions();
    ClusterConfig config = bench::CellConfig(seed, opts);
    config.clients_per_replica = opts.clients;
    config.faults = plan;
    config.proxy.retry = FaultRetry();

    const Workload w = Small();
    Cluster cluster(w, kTpcwOrdering, "LeastConnections", config);
    CellOutput out;
    out.workload = w.name;
    out.mix = kTpcwOrdering;
    out.policy = "LeastConnections";
    out.scenario = script.RunOn(cluster);
    out.executed_events = out.scenario.executed_events;
    RequireZeroLoss(cluster, id, out);
    return out;
  };
  return cell;
}

ScenarioBuilder PlainScript() {
  const bench::CellOptions opts = FaultOptions();
  return ScenarioBuilder().Warmup(opts.warmup).Measure(opts.measure, "measure");
}

// --- the inert dual-run cell -------------------------------------------------

// Same seed, two clusters: "plain" never touches the fault surface, "armed"
// enables the full retry protocol under an empty plan. Returns both measures;
// Report() requires them identical (including executed events).
CellOutput RunInertPair(uint64_t seed) {
  const bench::CellOptions opts = FaultOptions();
  const Workload w = Small();

  ClusterConfig plain_config = bench::CellConfig(seed, opts);
  plain_config.clients_per_replica = opts.clients;
  ScenarioResult plain_result = ScenarioBuilder()
                                    .Warmup(opts.warmup)
                                    .Measure(opts.measure, "plain")
                                    .Run(w, kTpcwOrdering, "LeastConnections", plain_config);

  ClusterConfig armed_config = bench::CellConfig(seed, opts);
  armed_config.clients_per_replica = opts.clients;
  armed_config.proxy.retry = FaultRetry();  // empty FaultPlan stays default
  ScenarioResult armed_result = ScenarioBuilder()
                                    .Warmup(opts.warmup)
                                    .Measure(opts.measure, "armed")
                                    .Run(w, kTpcwOrdering, "LeastConnections", armed_config);

  CellOutput out;
  out.workload = w.name;
  out.mix = kTpcwOrdering;
  out.policy = "LeastConnections";
  out.scalars.emplace_back("armed executed events",
                           static_cast<double>(armed_result.executed_events));
  out.scalars.emplace_back("plain executed events",
                           static_cast<double>(plain_result.executed_events));
  out.executed_events = armed_result.executed_events + plain_result.executed_events;
  out.scenario = std::move(armed_result);
  out.scenario.measures.push_back(
      {"plain", Seconds(0.0), std::move(plain_result.measures.front().result)});
  return out;
}

// Exact (==) comparison, field by field: the contract is byte-identity of the
// rendered run records, not closeness. Fault counters must match too (both
// runs report zeroes — the armed run injects nothing).
void RequireIdentical(const ExperimentResult& a, const ExperimentResult& b) {
  const auto fail = [](const std::string& field) {
    throw std::runtime_error("inert faults cell: armed and plain runs differ on '" + field +
                             "' — the armed-but-empty retry protocol is not inert");
  };
  if (a.tps != b.tps) fail("tps");
  if (a.mean_response_s != b.mean_response_s) fail("mean_response_s");
  if (a.p95_response_s != b.p95_response_s) fail("p95_response_s");
  if (a.committed != b.committed) fail("committed");
  if (a.aborted != b.aborted) fail("aborted");
  if (a.read_kb_per_txn != b.read_kb_per_txn) fail("read_kb_per_txn");
  if (a.write_kb_per_txn != b.write_kb_per_txn) fail("write_kb_per_txn");
  if (a.rejected != b.rejected) fail("rejected");
  if (a.availability != b.availability) fail("availability");
  if (a.recoveries != b.recoveries) fail("recoveries");
  if (a.log_chunks_hwm != b.log_chunks_hwm) fail("log_chunks_hwm");
  if (a.arena_bytes_hwm != b.arena_bytes_hwm) fail("arena_bytes_hwm");
  if (a.unevenness != b.unevenness) fail("unevenness");
  if (a.miss_rate != b.miss_rate) fail("miss_rate");
  if (a.realloc_moves != b.realloc_moves) fail("realloc_moves");
  if (a.msgs_dropped != b.msgs_dropped) fail("msgs_dropped");
  if (a.msgs_duplicated != b.msgs_duplicated) fail("msgs_duplicated");
  if (a.msgs_delayed != b.msgs_delayed) fail("msgs_delayed");
  if (a.cert_timeouts != b.cert_timeouts) fail("cert_timeouts");
  if (a.cert_retries != b.cert_retries) fail("cert_retries");
  if (a.pull_retries != b.pull_retries) fail("pull_retries");
  if (a.fenced != b.fenced) fail("fenced");
  if (a.stale_responses != b.stale_responses) fail("stale_responses");
  if (a.dedup_hits != b.dedup_hits) fail("dedup_hits");
  if (a.cert_crashes != b.cert_crashes) fail("cert_crashes");
  if (a.cert_failovers != b.cert_failovers) fail("cert_failovers");
  if (a.cert_downtime_s != b.cert_downtime_s) fail("cert_downtime_s");
  if (a.failover_recovery_s != b.failover_recovery_s) fail("failover_recovery_s");
}

// --- grid --------------------------------------------------------------------

std::vector<CampaignCell> Cells() {
  std::vector<CampaignCell> cells;

  CampaignCell inert;
  inert.id = "inert/pair";
  inert.run = RunInertPair;
  cells.push_back(std::move(inert));

  // Loss sweep: the retry protocol alone recovers every dropped message.
  cells.push_back(FaultCell("loss/1pct", Loss(0.01), PlainScript()));
  cells.push_back(FaultCell("loss/5pct", Loss(0.05), PlainScript()));
  cells.push_back(FaultCell("loss/20pct", Loss(0.20), PlainScript()));

  // Duplication/delay storm (the ASan cell of scripts/ci.sh): late responses
  // race their own retries, the certifier's dedup window absorbs the doubles.
  cells.push_back(
      FaultCell("dupdelay/storm", Storm(0.05, 0.15, 0.30, Millis(2)), PlainScript()));

  // Scripted one-way link partitions through the mutator verbs: proxy 0 loses
  // its certifier link for 5 s mid-window, proxy 1 for 2 s later on. Writes
  // queue behind the gatekeeper and drain on heal.
  cells.push_back(FaultCell("partition/heal", FaultPlan{},
                            ScenarioBuilder()
                                .Warmup(Seconds(30.0))
                                .PartitionAt(Seconds(20.0), 0, Seconds(5.0))
                                .PartitionAt(Seconds(60.0), 1, Seconds(2.0))
                                .Measure(Seconds(120.0), "measure")));

  // Clean crash/failover cycle: the certifier fail-stops 40 s into the
  // window, the warm standby takes over 8 s later; stale-epoch responses are
  // fenced and resent.
  cells.push_back(FaultCell("failover/clean", FaultPlan{},
                            ScenarioBuilder()
                                .Warmup(Seconds(30.0))
                                .CrashCertifierAt(Seconds(40.0))
                                .FailoverAt(Seconds(48.0))
                                .Measure(Seconds(120.0), "measure")));

  // Failover under a fault storm: two crash/failover cycles while the
  // channel drops and duplicates — the hardest zero-loss case.
  cells.push_back(FaultCell("failover/storm", Storm(0.05, 0.10, 0.20, Millis(1)),
                            ScenarioBuilder()
                                .Warmup(Seconds(30.0))
                                .CrashCertifierAt(Seconds(30.0))
                                .FailoverAt(Seconds(36.0))
                                .CrashCertifierAt(Seconds(70.0))
                                .FailoverAt(Seconds(78.0))
                                .Measure(Seconds(120.0), "measure")));

  return cells;
}

void AddFaultScalars(ResultSink& out, const std::string& key, const CellOutput& cell) {
  const ExperimentResult& res = cell.Result();
  out.AddScalar(key + " availability", res.availability);
  out.AddScalar(key + " msgs dropped", static_cast<double>(res.msgs_dropped));
  out.AddScalar(key + " msgs duplicated", static_cast<double>(res.msgs_duplicated));
  out.AddScalar(key + " msgs delayed", static_cast<double>(res.msgs_delayed));
  out.AddScalar(key + " cert timeouts", static_cast<double>(res.cert_timeouts));
  out.AddScalar(key + " cert retries", static_cast<double>(res.cert_retries));
  out.AddScalar(key + " pull retries", static_cast<double>(res.pull_retries));
  out.AddScalar(key + " fenced", static_cast<double>(res.fenced));
  out.AddScalar(key + " stale responses", static_cast<double>(res.stale_responses));
  out.AddScalar(key + " dedup hits", static_cast<double>(res.dedup_hits));
  out.AddScalar(key + " write queue hwm", static_cast<double>(res.write_queue_hwm));
  out.AddScalar(key + " cert crashes", static_cast<double>(res.cert_crashes));
  out.AddScalar(key + " cert failovers", static_cast<double>(res.cert_failovers));
  out.AddScalar(key + " cert downtime s", res.cert_downtime_s);
  out.AddScalar(key + " failover recovery s", res.failover_recovery_s);
  // The cell-side commit ledger (RequireZeroLoss already threw on violation;
  // scripts/ci.sh re-checks the bound from these numbers).
  for (const auto& scalar : cell.scalars) {
    out.AddScalar(key + " " + scalar.first, scalar.second);
  }
}

void Report(const CampaignOutputs& r, ResultSink& out) {
  out.Begin("Faults: channel loss/delay/partition, retry, certifier failover",
            "SmallDB, 6 replicas, LeastConnections, retry 2ms timeout + capped backoff");

  const CellOutput& inert = r.Get("inert/pair");
  RequireIdentical(inert.Result("armed"), inert.Result("plain"));
  double armed_events = 0.0, plain_events = 0.0;
  for (const auto& scalar : inert.scalars) {
    if (scalar.first == "armed executed events") armed_events = scalar.second;
    if (scalar.first == "plain executed events") plain_events = scalar.second;
  }
  if (armed_events != plain_events) {
    throw std::runtime_error(
        "inert faults cell: armed and plain runs executed different event counts — "
        "the always-cancelled retry timers are not event-inert");
  }
  out.AddRun(bench::RecOf("inert armed (retry shadow)", inert, 0, 0, 0, "armed"));
  out.AddRun(bench::RecOf("inert plain (fault-free)", inert, 0, 0, 0, "plain"));
  out.AddScalar("inert pair identical", 1.0);
  out.AddScalar("armed executed events", armed_events);
  out.AddScalar("plain executed events", plain_events);

  const struct {
    const char* id;
    const char* label;
  } kFaultCells[] = {
      {"loss/1pct", "loss 1%"},
      {"loss/5pct", "loss 5%"},
      {"loss/20pct", "loss 20%"},
      {"dupdelay/storm", "dup+delay storm"},
      {"partition/heal", "partition heal"},
      {"failover/clean", "failover clean"},
      {"failover/storm", "failover storm"},
  };
  for (const auto& fc : kFaultCells) {
    const CellOutput& cell = r.Get(fc.id);
    out.AddRun(bench::RecOf(fc.label, cell));
    AddFaultScalars(out, fc.label, cell);
    // Reached only when the cell's in-run RequireZeroLoss did not throw.
    out.AddScalar(std::string(fc.label) + " invariant ok", 1.0);
  }

  out.Note(
      "Zero-loss ledger: per cell, acknowledged commits <= certified commits and the "
      "overshoot stays within the summed gatekeeper bound (in-flight certifications).");
  out.Note(
      "inert/pair runs one seed twice (retry armed under an empty plan vs fault-free) "
      "and requires identical results and executed-event counts.");
  out.AddTimeline("failover/storm", r.Get("failover/storm").scenario.timeline,
                  r.Get("failover/storm").scenario.timeline_bucket);
}

RegisterCampaign faults{{"faults", "",
                         "Faults: channel loss/delay/partition, retry, certifier failover",
                         "SmallDB, 6 replicas, LeastConnections, retry + failover fabric",
                         Cells, Report}};

}  // namespace
}  // namespace tashkent
