// Figure 8: RUBiS bidding mix across replica memory sizes.
// DB 2.2 GB, RAM 256/512/1024 MB, 16 replicas.
// Paper (tps): LeastConnections 18/31/42, MALB-SC 23/43/44,
//              MALB-SC+UpdateFiltering 24/44/44.
// MALB helps below 1 GB; at 1 GB the working sets fit and LeastConnections
// catches up. Filtering adds little at the bidding mix's 15% update rate.
#include "bench/bench_common.h"
#include "src/workload/rubis.h"

namespace tashkent {
namespace {

void Run(ResultSink& out) {
  const Workload w = BuildRubis();
  const double paper_lc[3] = {18, 31, 42};
  const double paper_malb[3] = {23, 43, 44};
  const double paper_uf[3] = {24, 44, 44};
  const Bytes rams[3] = {256 * kMiB, 512 * kMiB, 1024 * kMiB};

  out.Begin("Figure 8: RUBiS bidding mix with update filtering",
            "DB 2.2GB, RAM 256/512/1024 MB, 16 replicas");
  for (int i = 0; i < 3; ++i) {
    const ClusterConfig config = MakeClusterConfig(rams[i]);
    const int clients = CalibratedClients(w, kRubisBidding, config);
    const auto lc = bench::RunPolicy(w, kRubisBidding, "LeastConnections", config, clients);
    const auto malb = bench::RunPolicy(w, kRubisBidding, "MALB-SC", config, clients);
    const auto uf = bench::RunPolicy(w, kRubisBidding, "MALB-SC", bench::WithFiltering(config),
                                     clients, Seconds(400.0));
    const std::string ram = std::to_string(static_cast<long long>(rams[i] / kMiB)) + "MB";
    out.AddRun(bench::Rec("LeastConnections RAM " + ram, "LeastConnections", w, kRubisBidding,
                          lc, paper_lc[i]));
    out.AddRun(bench::Rec("MALB-SC RAM " + ram, "MALB-SC", w, kRubisBidding, malb,
                          paper_malb[i]));
    out.AddRun(bench::Rec("MALB-SC+UpdateFiltering RAM " + ram, "MALB-SC", w, kRubisBidding,
                          uf, paper_uf[i]));
  }
}

}  // namespace
}  // namespace tashkent

int main(int argc, char** argv) {
  tashkent::bench::Harness harness(argc, argv, "fig8_rubis_memory_sweep");
  tashkent::Run(harness.out());
  return 0;
}
