// Campaign "fig8" — Figure 8: RUBiS bidding mix across replica memory sizes.
// DB 2.2 GB, RAM 256/512/1024 MB, 16 replicas.
// Paper (tps): LeastConnections 18/31/42, MALB-SC 23/43/44,
//              MALB-SC+UpdateFiltering 24/44/44.
// MALB helps below 1 GB; at 1 GB the working sets fit and LeastConnections
// catches up. Filtering adds little at the bidding mix's 15% update rate.
#include "bench/bench_common.h"
#include "src/workload/rubis.h"

namespace tashkent {
namespace {

constexpr Bytes kRams[3] = {256 * kMiB, 512 * kMiB, 1024 * kMiB};

Workload Rubis() { return BuildRubis(); }

using bench::RamLabel;

std::vector<CampaignCell> Cells() {
  std::vector<CampaignCell> cells;
  for (Bytes ram : kRams) {
    bench::CellOptions opts;
    opts.ram = ram;
    bench::CellOptions uf = opts;
    uf.filtering = true;
    uf.warmup = Seconds(400.0);
    const std::string suffix = "/" + RamLabel(ram);
    cells.push_back(
        bench::PolicyCell("lc" + suffix, Rubis, kRubisBidding, "LeastConnections", opts));
    cells.push_back(
        bench::PolicyCell("malb-sc" + suffix, Rubis, kRubisBidding, "MALB-SC", opts));
    cells.push_back(
        bench::PolicyCell("malb-sc-uf" + suffix, Rubis, kRubisBidding, "MALB-SC", uf));
  }
  return cells;
}

void Report(const CampaignOutputs& r, ResultSink& out) {
  const double paper_lc[3] = {18, 31, 42};
  const double paper_malb[3] = {23, 43, 44};
  const double paper_uf[3] = {24, 44, 44};

  out.Begin("Figure 8: RUBiS bidding mix with update filtering",
            "DB 2.2GB, RAM 256/512/1024 MB, 16 replicas");
  for (int i = 0; i < 3; ++i) {
    const std::string ram = RamLabel(kRams[i]);
    out.AddRun(bench::RecOf("LeastConnections RAM " + ram, r.Get("lc/" + ram), paper_lc[i]));
    out.AddRun(bench::RecOf("MALB-SC RAM " + ram, r.Get("malb-sc/" + ram), paper_malb[i]));
    out.AddRun(bench::RecOf("MALB-SC+UpdateFiltering RAM " + ram,
                            r.Get("malb-sc-uf/" + ram), paper_uf[i]));
  }
}

RegisterCampaign fig8{{"fig8", "Figure 8", "RUBiS bidding mix with update filtering",
                       "DB 2.2GB, RAM 256/512/1024 MB, 16 replicas", Cells, Report}};

}  // namespace
}  // namespace tashkent
