// Campaign "fig10" — Figure 10: the full TPC-W configuration sweep — 3
// database sizes x 3 mixes x 3 memory sizes x 3 methods (81 experiments).
// Each chart of the figure is one (DB, mix) cell with RAM on the x-axis and
// bars for LeastConnections / MALB-SC / MALB-SC+UpdateFiltering.
//
// Paper values (tps), series-major per chart (RAM 256/512/1024 MB):
//   LargeDB-Ordering:  LC 17/24/39   MALB 19/42/110  UF 21/56/147
//   LargeDB-Shopping:  LC 10/22/51   MALB 15/35/60   UF 15/36/61
//   LargeDB-Browsing:  LC  5/16/27   MALB  7/19/27   UF  7/19/27
//   MidDB-Ordering:    LC 20/37/114  MALB 29/76/169  UF 30/113/194
//   MidDB-Shopping:    LC 16/54/93   MALB 26/76/93   UF 26/79/93
//   MidDB-Browsing:    LC 11/37/51   MALB 19/45/51   UF 19/46/51
//   SmallDB-Ordering:  LC 101/212/247 MALB 130/211/257 UF 156/217/257
//   SmallDB-Shopping:  LC 267/339/341 MALB 278/340/343 UF 311/342/343
//   SmallDB-Browsing:  LC 295/299/295 MALB 300/299/305 UF 300/299/305
#include <array>

#include "bench/bench_common.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

struct Chart {
  const char* db_name;
  int ebs;
  const char* mix;
  // Paper tps for LC / MALB-SC / UF at 256, 512, 1024 MB.
  std::array<double, 3> paper_lc;
  std::array<double, 3> paper_malb;
  std::array<double, 3> paper_uf;
};

constexpr std::array<Bytes, 3> kRams = {256 * kMiB, 512 * kMiB, 1024 * kMiB};

const Chart kCharts[] = {
    {"LargeDB", kTpcwLargeEbs, kTpcwOrdering, {17, 24, 39}, {19, 42, 110}, {21, 56, 147}},
    {"LargeDB", kTpcwLargeEbs, kTpcwShopping, {10, 22, 51}, {15, 35, 60}, {15, 36, 61}},
    {"LargeDB", kTpcwLargeEbs, kTpcwBrowsing, {5, 16, 27}, {7, 19, 27}, {7, 19, 27}},
    {"MidDB", kTpcwMediumEbs, kTpcwOrdering, {20, 37, 114}, {29, 76, 169}, {30, 113, 194}},
    {"MidDB", kTpcwMediumEbs, kTpcwShopping, {16, 54, 93}, {26, 76, 93}, {26, 79, 93}},
    {"MidDB", kTpcwMediumEbs, kTpcwBrowsing, {11, 37, 51}, {19, 45, 51}, {19, 46, 51}},
    {"SmallDB", kTpcwSmallEbs, kTpcwOrdering, {101, 212, 247}, {130, 211, 257}, {156, 217, 257}},
    {"SmallDB", kTpcwSmallEbs, kTpcwShopping, {267, 339, 341}, {278, 340, 343}, {311, 342, 343}},
    {"SmallDB", kTpcwSmallEbs, kTpcwBrowsing, {295, 299, 295}, {300, 299, 305}, {300, 299, 305}},
};

using bench::RamLabel;

std::vector<CampaignCell> Cells() {
  std::vector<CampaignCell> cells;
  for (const Chart& chart : kCharts) {
    const int ebs = chart.ebs;
    auto wf = [ebs]() { return BuildTpcw(ebs); };
    const std::string prefix = std::string(chart.db_name) + "-" + chart.mix;
    for (size_t i = 0; i < kRams.size(); ++i) {
      bench::CellOptions opts;
      opts.ram = kRams[i];
      opts.warmup = Seconds(200.0);
      opts.measure = Seconds(200.0);
      bench::CellOptions uf = opts;
      uf.filtering = true;
      uf.warmup = Seconds(300.0);
      const std::string coord = prefix + "/" + RamLabel(kRams[i]);
      cells.push_back(bench::PolicyCell("lc/" + coord, wf, chart.mix, "LeastConnections", opts));
      cells.push_back(bench::PolicyCell("malb-sc/" + coord, wf, chart.mix, "MALB-SC", opts));
      cells.push_back(bench::PolicyCell("malb-sc-uf/" + coord, wf, chart.mix, "MALB-SC", uf));
    }
  }
  return cells;
}

void Report(const CampaignOutputs& r, ResultSink& out) {
  out.Begin("Figure 10: TPC-W throughput sweep (81 experiments)",
            "3 DB sizes x 3 mixes x 3 RAM sizes x LC / MALB-SC / MALB-SC+UF");
  for (const Chart& chart : kCharts) {
    const std::string prefix = std::string(chart.db_name) + "-" + chart.mix;
    for (size_t i = 0; i < kRams.size(); ++i) {
      const std::string coord = prefix + "/" + RamLabel(kRams[i]);
      const std::string ram = " RAM " + RamLabel(kRams[i]);
      out.AddRun(
          bench::RecOf(prefix + ram + " LC", r.Get("lc/" + coord), chart.paper_lc[i]));
      out.AddRun(bench::RecOf(prefix + ram + " MALB-SC", r.Get("malb-sc/" + coord),
                              chart.paper_malb[i]));
      out.AddRun(bench::RecOf(prefix + ram + " MALB-SC+UF", r.Get("malb-sc-uf/" + coord),
                              chart.paper_uf[i]));
    }
  }
}

RegisterCampaign fig10{{"fig10", "Figure 10", "TPC-W throughput sweep (81 experiments)",
                        "3 DB sizes x 3 mixes x 3 RAM sizes x LC / MALB-SC / MALB-SC+UF",
                        Cells, Report}};

}  // namespace
}  // namespace tashkent
