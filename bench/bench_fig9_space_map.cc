// Figure 9: the database-size vs memory-size space.
// Qualitative region map: when the working sets exceed memory everywhere,
// partitioning cannot help; when the database fits in memory, it is not
// needed; in between, partitioning and filtering improve performance.
// This bench derives the map empirically from MALB-SC vs LeastConnections
// runs over the (DB, RAM) grid on the ordering mix, classifying each cell by
// the measured speedup.
#include "bench/bench_common.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

const char* Classify(double speedup) {
  if (speedup >= 1.25) {
    return "PARTITIONING-HELPS";
  }
  if (speedup >= 1.05) {
    return "modest-gain";
  }
  return "no-gain";
}

void Run(ResultSink& out) {
  out.Begin("Figure 9: database size vs memory size space",
            "cell = MALB-SC speedup over LeastConnections (ordering mix)");
  const int dbs[3] = {kTpcwSmallEbs, kTpcwMediumEbs, kTpcwLargeEbs};
  const char* db_names[3] = {"SmallDB-0.7GB", "MidDB-1.8GB", "LargeDB-2.9GB"};
  const Bytes rams[3] = {256 * kMiB, 512 * kMiB, 1024 * kMiB};

  for (int d = 0; d < 3; ++d) {
    const Workload w = BuildTpcw(dbs[d]);
    for (int m = 0; m < 3; ++m) {
      const ClusterConfig config = MakeClusterConfig(rams[m]);
      const int clients = CalibratedClients(w, kTpcwOrdering, config);
      const auto lc = bench::RunPolicy(w, kTpcwOrdering, "LeastConnections", config, clients,
                                       Seconds(200.0), Seconds(200.0));
      const auto malb = bench::RunPolicy(w, kTpcwOrdering, "MALB-SC", config, clients,
                                         Seconds(200.0), Seconds(200.0));
      const double speedup = lc.tps > 0 ? malb.tps / lc.tps : 0.0;
      const std::string cell =
          std::string(db_names[d]) + " RAM " +
          std::to_string(static_cast<long long>(rams[m] / kMiB)) + "MB";
      out.AddRun(bench::Rec(cell + " LC", "LeastConnections", w, kTpcwOrdering, lc));
      out.AddRun(bench::Rec(cell + " MALB-SC", "MALB-SC", w, kTpcwOrdering, malb));
      out.AddScalar(cell + " speedup", speedup);
      out.Note(cell + ": " + Classify(speedup));
    }
  }
  out.Note("Expected shape (paper): the diagonal band where working sets of groups fit "
           "memory but their union does not shows the largest gains; tiny-DB/large-RAM "
           "and huge-DB/tiny-RAM corners show little benefit.");
}

}  // namespace
}  // namespace tashkent

int main(int argc, char** argv) {
  tashkent::bench::Harness harness(argc, argv, "fig9_space_map");
  tashkent::Run(harness.out());
  return 0;
}
