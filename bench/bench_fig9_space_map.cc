// Figure 9: the database-size vs memory-size space.
// Qualitative region map: when the working sets exceed memory everywhere,
// partitioning cannot help; when the database fits in memory, it is not
// needed; in between, partitioning and filtering improve performance.
// This bench derives the map empirically from MALB-SC vs LeastConnections
// runs over the (DB, RAM) grid on the ordering mix, classifying each cell by
// the measured speedup.
#include "bench/bench_common.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

const char* Classify(double speedup) {
  if (speedup >= 1.25) {
    return "PARTITIONING-HELPS";
  }
  if (speedup >= 1.05) {
    return "modest-gain";
  }
  return "no-gain";
}

void Run() {
  std::printf("== Figure 9: database size vs memory size space ==\n");
  std::printf("   cell = MALB-SC speedup over LeastConnections (ordering mix)\n\n");
  const int dbs[3] = {kTpcwSmallEbs, kTpcwMediumEbs, kTpcwLargeEbs};
  const char* db_names[3] = {"SmallDB 0.7GB", "MidDB  1.8GB", "LargeDB 2.9GB"};
  const Bytes rams[3] = {256 * kMiB, 512 * kMiB, 1024 * kMiB};

  std::printf("%-15s", "");
  for (Bytes ram : rams) {
    std::printf(" %20lld MB", static_cast<long long>(ram / kMiB));
  }
  std::printf("\n");

  for (int d = 0; d < 3; ++d) {
    const Workload w = BuildTpcw(dbs[d]);
    std::printf("%-15s", db_names[d]);
    for (int m = 0; m < 3; ++m) {
      const ClusterConfig config = MakeClusterConfig(rams[m]);
      const int clients = CalibratedClients(w, kTpcwOrdering, config);
      const auto lc = bench::RunPolicy(w, kTpcwOrdering, Policy::kLeastConnections, config,
                                       clients, Seconds(200.0), Seconds(200.0));
      const auto malb = bench::RunPolicy(w, kTpcwOrdering, Policy::kMalbSC, config, clients,
                                         Seconds(200.0), Seconds(200.0));
      const double speedup = lc.tps > 0 ? malb.tps / lc.tps : 0.0;
      std::printf(" %6.2fx %-16s", speedup, Classify(speedup));
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape (paper): the diagonal band where working sets of groups fit\n"
              "memory but their union does not shows the largest gains; tiny-DB/large-RAM\n"
              "and huge-DB/tiny-RAM corners show little benefit.\n");
}

}  // namespace
}  // namespace tashkent

int main() {
  tashkent::Run();
  return 0;
}
