// Campaign "fig9" — Figure 9: the database-size vs memory-size space.
// Qualitative region map: when the working sets exceed memory everywhere,
// partitioning cannot help; when the database fits in memory, it is not
// needed; in between, partitioning and filtering improve performance.
// This campaign derives the map empirically from MALB-SC vs LeastConnections
// runs over the (DB, RAM) grid on the ordering mix, classifying each cell by
// the measured speedup.
#include "bench/bench_common.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

constexpr int kDbs[3] = {kTpcwSmallEbs, kTpcwMediumEbs, kTpcwLargeEbs};
const char* const kDbNames[3] = {"SmallDB-0.7GB", "MidDB-1.8GB", "LargeDB-2.9GB"};
constexpr Bytes kRams[3] = {256 * kMiB, 512 * kMiB, 1024 * kMiB};

using bench::RamLabel;

const char* Classify(double speedup) {
  if (speedup >= 1.25) {
    return "PARTITIONING-HELPS";
  }
  if (speedup >= 1.05) {
    return "modest-gain";
  }
  return "no-gain";
}

std::vector<CampaignCell> Cells() {
  std::vector<CampaignCell> cells;
  for (int d = 0; d < 3; ++d) {
    const int ebs = kDbs[d];
    auto wf = [ebs]() { return BuildTpcw(ebs); };
    for (int m = 0; m < 3; ++m) {
      bench::CellOptions opts;
      opts.ram = kRams[m];
      opts.warmup = Seconds(200.0);
      opts.measure = Seconds(200.0);
      const std::string coord = std::string(kDbNames[d]) + "/" + RamLabel(kRams[m]);
      cells.push_back(
          bench::PolicyCell("lc/" + coord, wf, kTpcwOrdering, "LeastConnections", opts));
      cells.push_back(
          bench::PolicyCell("malb-sc/" + coord, wf, kTpcwOrdering, "MALB-SC", opts));
    }
  }
  return cells;
}

void Report(const CampaignOutputs& r, ResultSink& out) {
  out.Begin("Figure 9: database size vs memory size space",
            "cell = MALB-SC speedup over LeastConnections (ordering mix)");
  for (int d = 0; d < 3; ++d) {
    for (int m = 0; m < 3; ++m) {
      const std::string coord = std::string(kDbNames[d]) + "/" + RamLabel(kRams[m]);
      const ExperimentResult& lc = r.Result("lc/" + coord);
      const ExperimentResult& malb = r.Result("malb-sc/" + coord);
      const double speedup = lc.tps > 0 ? malb.tps / lc.tps : 0.0;
      const std::string cell =
          std::string(kDbNames[d]) + " RAM " + RamLabel(kRams[m]);
      out.AddRun(bench::RecOf(cell + " LC", r.Get("lc/" + coord)));
      out.AddRun(bench::RecOf(cell + " MALB-SC", r.Get("malb-sc/" + coord)));
      out.AddScalar(cell + " speedup", speedup);
      out.Note(cell + ": " + Classify(speedup));
    }
  }
  out.Note("Expected shape (paper): the diagonal band where working sets of groups fit "
           "memory but their union does not shows the largest gains; tiny-DB/large-RAM "
           "and huge-DB/tiny-RAM corners show little benefit.");
}

RegisterCampaign fig9{{"fig9", "Figure 9", "database size vs memory size space",
                       "TPC-W ordering; 3 DB sizes x 3 RAM sizes, MALB-SC vs LC", Cells,
                       Report}};

}  // namespace
}  // namespace tashkent
