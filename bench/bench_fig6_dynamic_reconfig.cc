// Campaign "fig6" — Figure 6: dynamic reconfiguration under a mix change.
// TPC-W switches shopping -> browsing -> shopping every 2000 s.
// Paper: MALB-SC tracks ~76 tps under shopping and ~45 tps under browsing;
// a static shopping configuration forced to run browsing achieves only
// 19 tps — worse than LeastConnections' 37 — so dynamic allocation is
// necessary.
//
// Three independent ScenarioCell scripts; phase means are read off the
// merged scenario timelines in the report stage.
#include "bench/bench_common.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

constexpr SimDuration kPhase = Seconds(2000.0);
// Phase means skip the first 300 s of each phase so the reconfiguration
// transient does not dilute the steady-state number.
constexpr double kTransientSkipS = 300.0;

Workload Mid() { return BuildTpcw(kTpcwMediumEbs); }

std::vector<CampaignCell> Cells() {
  return {
      // Dynamic MALB-SC through the mix switches.
      bench::ScenarioCell("dynamic", Mid, kTpcwShopping, "MALB-SC",
                          ScenarioBuilder()
                              .Advance(kPhase)
                              .SwitchMix(kTpcwBrowsing)
                              .Advance(kPhase)
                              .SwitchMix(kTpcwShopping)
                              .Measure(kPhase, "shopping-return")),
      // Static shopping configuration forced to run browsing.
      bench::ScenarioCell("frozen", Mid, kTpcwShopping, "MALB-SC",
                          ScenarioBuilder()
                              .Advance(Seconds(1500.0))  // converge on shopping
                              .FreezeAllocation()
                              .SwitchMix(kTpcwBrowsing)
                              .Advance(Seconds(300.0))
                              .Measure(Seconds(1200.0), "static-browsing")),
      // LeastConnections reference under browsing. Calibrated on shopping
      // like the other two cells (the paper drives the whole figure with one
      // client population).
      bench::ScenarioCell("lc-browsing", Mid, kTpcwBrowsing, "LeastConnections",
                          ScenarioBuilder()
                              .Warmup(Seconds(400.0))
                              .Measure(Seconds(1200.0), "browsing"),
                          [] {
                            bench::CellOptions opts;
                            opts.calibrate_mix = kTpcwShopping;
                            return opts;
                          }()),
  };
}

void Report(const CampaignOutputs& r, ResultSink& out) {
  const ScenarioResult& dynamic = r.Get("dynamic").scenario;
  const double shopping1 = dynamic.PhaseMeanTps(0, 2000, kTransientSkipS);
  const double browsing = dynamic.PhaseMeanTps(2000, 4000, kTransientSkipS);
  const double shopping2 = dynamic.PhaseMeanTps(4000, 6000, kTransientSkipS);
  const ExperimentResult& static_browsing = r.Result("frozen", "static-browsing");

  out.Begin("Figure 6: dynamic reconfiguration (shopping -> browsing -> shopping)",
            "MidDB 1.8GB, RAM 512MB, 16 replicas; 2000 s per phase");
  out.AddScalar("MALB-SC shopping phase 1 tps (paper 76)", shopping1);
  out.AddScalar("MALB-SC browsing phase 2 tps (paper 45)", browsing);
  out.AddScalar("MALB-SC shopping phase 3 tps (paper 76)", shopping2);
  // The phase-3 measure window (full phase, transient included) as a run row.
  out.AddRun(bench::RecOf("MALB-SC shopping-return (phase 3 window)", r.Get("dynamic"), 76,
                          0, 0, "shopping-return"));
  out.AddRun(bench::RecOf("static shopping cfg, browsing", r.Get("frozen"), 19, 0, 0,
                          "static-browsing"));
  out.AddRun(
      bench::RecOf("LeastConnections, browsing", r.Get("lc-browsing"), 37, 0, 0, "browsing"));
  out.AddRatio("static / dynamic browsing (paper 0.42)", 19.0 / 45.0,
               browsing > 0 ? static_browsing.tps / browsing : 0.0);
  out.AddTimeline("MALB-SC throughput timeline", dynamic.timeline, dynamic.timeline_bucket);
}

RegisterCampaign fig6{{"fig6", "Figure 6",
                       "dynamic reconfiguration (shopping -> browsing -> shopping)",
                       "MidDB 1.8GB, RAM 512MB, 16 replicas; 2000 s per phase", Cells,
                       Report}};

}  // namespace
}  // namespace tashkent
