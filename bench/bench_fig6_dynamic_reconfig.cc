// Figure 6: dynamic reconfiguration under a workload mix change.
// TPC-W switches shopping -> browsing -> shopping every 2000 s.
// Paper: MALB-SC tracks ~76 tps under shopping and ~45 tps under browsing;
// a static shopping configuration forced to run browsing achieves only
// 19 tps — worse than LeastConnections' 37 — so dynamic allocation is
// necessary.
//
// The whole experiment is three ScenarioBuilder scripts — no hand-rolled
// phase loop; phase means are read off the merged scenario timeline.
#include "bench/bench_common.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

constexpr SimDuration kPhase = Seconds(2000.0);
// Phase means skip the first 300 s of each phase so the reconfiguration
// transient does not dilute the steady-state number.
constexpr double kTransientSkipS = 300.0;

void Run(ResultSink& out) {
  const Workload w = BuildTpcw(kTpcwMediumEbs);
  ClusterConfig config = MakeClusterConfig(512 * kMiB);
  config.clients_per_replica = CalibratedClients(w, kTpcwShopping, config);

  // --- Dynamic MALB-SC through the mix switches ---------------------------
  const ScenarioResult dynamic = ScenarioBuilder()
                                     .Advance(kPhase)
                                     .SwitchMix(kTpcwBrowsing)
                                     .Advance(kPhase)
                                     .SwitchMix(kTpcwShopping)
                                     .Measure(kPhase, "shopping-return")
                                     .Run(w, kTpcwShopping, "MALB-SC", config);
  const double shopping1 = dynamic.PhaseMeanTps(0, 2000, kTransientSkipS);
  const double browsing = dynamic.PhaseMeanTps(2000, 4000, kTransientSkipS);
  const double shopping2 = dynamic.PhaseMeanTps(4000, 6000, kTransientSkipS);

  // --- Static shopping configuration forced to run browsing ---------------
  const ScenarioResult frozen = ScenarioBuilder()
                                    .Advance(Seconds(1500.0))  // converge on shopping
                                    .FreezeAllocation()
                                    .SwitchMix(kTpcwBrowsing)
                                    .Advance(Seconds(300.0))
                                    .Measure(Seconds(1200.0), "static-browsing")
                                    .Run(w, kTpcwShopping, "MALB-SC", config);
  const ExperimentResult& static_browsing = frozen.ByLabel("static-browsing");

  // --- LeastConnections reference under browsing --------------------------
  const ScenarioResult lc = ScenarioBuilder()
                                .Warmup(Seconds(400.0))
                                .Measure(Seconds(1200.0), "browsing")
                                .Run(w, kTpcwBrowsing, "LeastConnections", config);
  const ExperimentResult& lc_browsing = lc.ByLabel("browsing");

  out.Begin("Figure 6: dynamic reconfiguration (shopping -> browsing -> shopping)",
            "MidDB 1.8GB, RAM 512MB, 16 replicas; 2000 s per phase");
  out.AddScalar("MALB-SC shopping phase 1 tps (paper 76)", shopping1);
  out.AddScalar("MALB-SC browsing phase 2 tps (paper 45)", browsing);
  out.AddScalar("MALB-SC shopping phase 3 tps (paper 76)", shopping2);
  // The phase-3 measure window (full phase, transient included) as a run row.
  out.AddRun(bench::Rec("MALB-SC shopping-return (phase 3 window)", "MALB-SC", w,
                        kTpcwShopping, dynamic.ByLabel("shopping-return"), 76));
  out.AddRun(bench::Rec("static shopping cfg, browsing", "MALB-SC", w, kTpcwBrowsing,
                        static_browsing, 19));
  out.AddRun(bench::Rec("LeastConnections, browsing", "LeastConnections", w, kTpcwBrowsing,
                        lc_browsing, 37));
  out.AddRatio("static / dynamic browsing (paper 0.42)", 19.0 / 45.0,
               browsing > 0 ? static_browsing.tps / browsing : 0.0);
  out.AddTimeline("MALB-SC throughput timeline", dynamic.timeline, dynamic.timeline_bucket);
}

}  // namespace
}  // namespace tashkent

int main(int argc, char** argv) {
  tashkent::bench::Harness harness(argc, argv, "fig6_dynamic_reconfig");
  tashkent::Run(harness.out());
  return 0;
}
