// Figure 6: dynamic reconfiguration under a workload mix change.
// TPC-W switches shopping -> browsing -> shopping every 2000 s.
// Paper: MALB-SC tracks ~76 tps under shopping and ~45 tps under browsing;
// a static shopping configuration forced to run browsing achieves only
// 19 tps — worse than LeastConnections' 37 — so dynamic allocation is
// necessary.
#include <algorithm>

#include "bench/bench_common.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

constexpr SimDuration kPhase = Seconds(2000.0);

double PhaseMean(const std::vector<double>& buckets, SimDuration width, double from_s,
                 double to_s) {
  // Means over [from+skip, to): skip the first 300 s of each phase so the
  // reconfiguration transient does not dilute the steady-state number.
  const double skip = 300.0;
  double total = 0.0;
  int n = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const double t = static_cast<double>(i) * ToSeconds(width);
    if (t >= from_s + skip && t < to_s) {
      total += buckets[i];
      ++n;
    }
  }
  return n > 0 ? total / (static_cast<double>(n) * ToSeconds(width)) : 0.0;
}

void Run() {
  const Workload w = BuildTpcw(kTpcwMediumEbs);
  ClusterConfig config = MakeClusterConfig(512 * kMiB);
  const int clients = CalibratedClients(w, kTpcwShopping, config);
  config.clients_per_replica = clients;

  // --- Dynamic MALB-SC through the mix switches ---------------------------
  Cluster dynamic(&w, kTpcwShopping, Policy::kMalbSC, config);
  dynamic.Advance(kPhase);
  dynamic.SwitchMix(kTpcwBrowsing);
  dynamic.Advance(kPhase);
  dynamic.SwitchMix(kTpcwShopping);
  ExperimentResult timeline = dynamic.Measure(kPhase);

  const double shopping1 = PhaseMean(timeline.timeline, timeline.timeline_bucket, 0, 2000);
  const double browsing = PhaseMean(timeline.timeline, timeline.timeline_bucket, 2000, 4000);
  const double shopping2 = PhaseMean(timeline.timeline, timeline.timeline_bucket, 4000, 6000);

  // --- Static shopping configuration forced to run browsing ---------------
  Cluster frozen(&w, kTpcwShopping, Policy::kMalbSC, config);
  frozen.Advance(Seconds(1500.0));  // converge on shopping
  frozen.FreezeAllocation();
  frozen.SwitchMix(kTpcwBrowsing);
  frozen.Advance(Seconds(300.0));
  const ExperimentResult static_browsing = frozen.Measure(Seconds(1200.0));

  // --- LeastConnections reference under browsing --------------------------
  Cluster lc(&w, kTpcwBrowsing, Policy::kLeastConnections, config);
  const ExperimentResult lc_browsing = lc.Run(Seconds(400.0), Seconds(1200.0));

  PrintHeader("Figure 6: dynamic reconfiguration (shopping -> browsing -> shopping)",
              "MidDB 1.8GB, RAM 512MB, 16 replicas; 2000 s per phase");
  PrintTpsRow("MALB-SC shopping (phase 1)", 76, shopping1, 0);
  PrintTpsRow("MALB-SC browsing (phase 2)", 45, browsing, 0);
  PrintTpsRow("MALB-SC shopping (phase 3)", 76, shopping2, 0);
  PrintTpsRow("static shopping cfg, browsing", 19, static_browsing.tps,
              static_browsing.mean_response_s);
  PrintTpsRow("LeastConnections, browsing", 37, lc_browsing.tps, lc_browsing.mean_response_s);
  PrintRatio("static / dynamic browsing (paper 0.42)", 19.0 / 45.0,
             browsing > 0 ? static_browsing.tps / browsing : 0.0);

  std::printf("\nthroughput timeline (30 s buckets, tps):\n");
  for (size_t i = 0; i < timeline.timeline.size(); i += 4) {
    std::printf("  t=%5.0fs  %6.1f tps\n", static_cast<double>(i) * 30.0,
                timeline.timeline[i] / 30.0);
  }
}

}  // namespace
}  // namespace tashkent

int main() {
  tashkent::Run();
  return 0;
}
