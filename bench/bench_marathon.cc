// Campaign "marathon" — multi-hour simulated churn proving the bounded
// certifier log and age-independent checkpoint joins (beyond the paper;
// docs/OPERATIONS.md "Checkpoints and log pruning" is the operator story).
//
// Two questions a cluster that lives for days must answer, and the cells
// that answer them:
//   * bounded/legacy — six 20-minute churn epochs (kill/recover every epoch,
//     one AddReplica, one ResizeMemory) under identical load. With
//     auto-pruning on (`bounded`), the certifier log's chunk count and arena
//     bytes must PLATEAU across epochs: the prune floor chases the slowest
//     replica, so log memory is bounded by churn depth, not uptime. With the
//     checkpoint machinery off (`legacy`), the same metrics grow
//     monotonically — the pre-PR-7 behavior kept as the control.
//   * join-age/checkpoint vs join-age/replay — one replica joins a young
//     cluster, another joins the same cluster ~40 simulated minutes later.
//     Checkpoint joins install a fixed-size image plus a short suffix
//     replay, so join latency is independent of cluster age; legacy joins
//     replay the whole log, so the old join pays for every commit since
//     version 0.
//
// Tracked metrics (per-run JSON columns; scripts/ci.sh gates on the
// manifest): log_chunks_hwm, arena_bytes_hwm, join_latency_s, availability.
#include <algorithm>

#include "bench/bench_common.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

Workload Mid() { return BuildTpcw(kTpcwMediumEbs); }

constexpr size_t kReplicas = 6;
constexpr int kEpochs = 6;
constexpr double kEpochSeconds = 1200.0;  // 6 x 20 min = 2 simulated hours

// Six churn epochs: each kills one replica a minute in and recovers it four
// minutes later; epoch 2 also grows the cluster by one replica and epoch 4
// resizes replica 0. Replica 0 is never the kill victim (it is the resize
// target), so victims rotate over 1..5.
ScenarioBuilder MarathonScript() {
  ScenarioBuilder script;
  script.Warmup(Seconds(240.0));
  for (int e = 0; e < kEpochs; ++e) {
    const size_t victim = 1 + static_cast<size_t>(e) % (kReplicas - 1);
    script.KillReplicaAt(Seconds(60.0), victim);
    script.RecoverReplicaAt(Seconds(300.0), victim);
    if (e == 2) {
      script.AddReplicaAt(Seconds(600.0));
    }
    if (e == 4) {
      script.ResizeMemoryAt(Seconds(600.0), 0, 1024 * kMiB);
    }
    script.Measure(Seconds(kEpochSeconds), "epoch" + std::to_string(e));
  }
  return script;
}

// Join-age probe: the same join performed against a young cluster and again
// after ~40 more simulated minutes of commits. Each join gets a 900 s window
// so even the legacy full-log replay completes inside its measure.
ScenarioBuilder JoinAgeScript() {
  return ScenarioBuilder()
      .Warmup(Seconds(240.0))
      .AddReplicaAt(Seconds(30.0))
      .Measure(Seconds(900.0), "join-young")
      .Advance(Seconds(2400.0))
      .AddReplicaAt(Seconds(30.0))
      .Measure(Seconds(900.0), "join-old");
}

bench::CellOptions MarathonOptions(bool legacy) {
  bench::CellOptions opts;
  opts.replicas = kReplicas;
  opts.clients = 6;  // fixed population: the campaign tracks memory + joins, not peak tps
  if (legacy) {
    opts.tweak = [](ClusterConfig& config) {
      // The pre-checkpoint control: joins replay the whole log and nothing
      // ever prunes, so log memory grows with uptime.
      config.checkpoint.checkpoint_join = false;
      config.checkpoint.auto_prune = false;
    };
  }
  return opts;
}

std::vector<CampaignCell> Cells() {
  return {
      bench::ScenarioCell("bounded", Mid, kTpcwOrdering, "MALB-SC", MarathonScript(),
                          MarathonOptions(false)),
      bench::ScenarioCell("legacy", Mid, kTpcwOrdering, "MALB-SC", MarathonScript(),
                          MarathonOptions(true)),
      bench::ScenarioCell("join-age/checkpoint", Mid, kTpcwOrdering, "MALB-SC",
                          JoinAgeScript(), MarathonOptions(false)),
      bench::ScenarioCell("join-age/replay", Mid, kTpcwOrdering, "MALB-SC",
                          JoinAgeScript(), MarathonOptions(true)),
  };
}

void Report(const CampaignOutputs& r, ResultSink& out) {
  out.Begin("Marathon: bounded log & age-independent joins (beyond paper)",
            "MidDB 1.8GB, 6 replicas, 6 clients/replica, 6 x 20 min churn epochs");

  const CellOutput& bounded = r.Get("bounded");
  const CellOutput& legacy = r.Get("legacy");
  double bounded_avail = 1.0;
  for (int e = 0; e < kEpochs; ++e) {
    const std::string label = "epoch" + std::to_string(e);
    out.AddRun(bench::RecOf("bounded " + label, bounded, 0, 0, 0, label));
    out.AddRun(bench::RecOf("legacy " + label, legacy, 0, 0, 0, label));
    bounded_avail = std::min(bounded_avail, bounded.Result(label).availability);
  }

  // The bound: with auto-pruning the log's high-water marks must plateau —
  // the last epoch sees no more log memory than the early epochs did (modulo
  // the churn window a down replica pins open). Legacy grows every epoch.
  const ExperimentResult& b1 = bounded.Result("epoch1");
  const ExperimentResult& b5 = bounded.Result("epoch5");
  const ExperimentResult& l1 = legacy.Result("epoch1");
  const ExperimentResult& l5 = legacy.Result("epoch5");
  out.AddScalar("bounded log chunks hwm epoch1", static_cast<double>(b1.log_chunks_hwm));
  out.AddScalar("bounded log chunks hwm epoch5", static_cast<double>(b5.log_chunks_hwm));
  out.AddScalar("legacy log chunks hwm epoch1", static_cast<double>(l1.log_chunks_hwm));
  out.AddScalar("legacy log chunks hwm epoch5", static_cast<double>(l5.log_chunks_hwm));
  out.AddScalar("bounded arena bytes hwm epoch5", static_cast<double>(b5.arena_bytes_hwm));
  out.AddScalar("legacy arena bytes hwm epoch5", static_cast<double>(l5.arena_bytes_hwm));
  out.AddScalar("bounded/legacy log chunks hwm epoch5 ratio",
                l5.log_chunks_hwm > 0 ? static_cast<double>(b5.log_chunks_hwm) /
                                            static_cast<double>(l5.log_chunks_hwm)
                                      : 0.0);
  out.AddScalar("bounded min epoch availability", bounded_avail);
  out.Note("bounded vs legacy: identical 2-hour churn script; auto-pruning keeps the "
           "bounded cell's log chunk/arena high-water marks flat across epochs while the "
           "legacy cell's grow monotonically with uptime.");

  // Join latency vs cluster age: a checkpoint join costs the same whether the
  // cluster is 4 minutes or 45 minutes old; a legacy join replays the whole
  // log and slows down with age.
  const CellOutput& ck = r.Get("join-age/checkpoint");
  const CellOutput& rp = r.Get("join-age/replay");
  out.AddRun(bench::RecOf("checkpoint join young", ck, 0, 0, 0, "join-young"));
  out.AddRun(bench::RecOf("checkpoint join old", ck, 0, 0, 0, "join-old"));
  out.AddRun(bench::RecOf("replay join young", rp, 0, 0, 0, "join-young"));
  out.AddRun(bench::RecOf("replay join old", rp, 0, 0, 0, "join-old"));
  const double ck_young = ck.Result("join-young").join_latency_s;
  const double ck_old = ck.Result("join-old").join_latency_s;
  const double rp_young = rp.Result("join-young").join_latency_s;
  const double rp_old = rp.Result("join-old").join_latency_s;
  out.AddScalar("checkpoint join latency young (s)", ck_young);
  out.AddScalar("checkpoint join latency old (s)", ck_old);
  out.AddScalar("replay join latency young (s)", rp_young);
  out.AddScalar("replay join latency old (s)", rp_old);
  if (ck_young > 0) {
    out.AddScalar("checkpoint join old/young latency ratio", ck_old / ck_young);
  }
  if (rp_young > 0) {
    out.AddScalar("replay join old/young latency ratio", rp_old / rp_young);
  }
  out.Note("join-age: both cells join one replica into a ~4-minute-old cluster and another "
           "~40 minutes later. Checkpoint joins transfer a fixed-size image (old/young "
           "ratio ~1); legacy joins replay the whole log, so the old join pays for every "
           "commit since version 0.");

  const ScenarioResult& timeline = bounded.scenario;
  out.AddTimeline("marathon bounded throughput", timeline.timeline, timeline.timeline_bucket);
}

RegisterCampaign marathon{{"marathon", "",
                           "bounded certifier log & age-independent checkpoint joins "
                           "(2h simulated churn)",
                           "MidDB 1.8GB, 6 replicas, kill/recover/add/resize epochs",
                           Cells, Report}};

}  // namespace
}  // namespace tashkent
