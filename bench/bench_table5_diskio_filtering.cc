// Table 5: TPC-W average disk I/O per transaction including update filtering.
// Paper: MALB-SC writes 12 KB / reads 20 KB; MALB-SC+UpdateFiltering writes
// 9 KB (-25%) / reads 18 KB.
#include "bench/bench_common.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

void Run() {
  const Workload w = BuildTpcw(kTpcwMediumEbs);
  const ClusterConfig config = MakeClusterConfig(512 * kMiB);
  const int clients = CalibratedClients(w, kTpcwOrdering, config);

  const auto lc = bench::RunPolicy(w, kTpcwOrdering, Policy::kLeastConnections, config, clients);
  const auto malb = bench::RunPolicy(w, kTpcwOrdering, Policy::kMalbSC, config, clients);
  const auto uf = bench::RunPolicy(w, kTpcwOrdering, Policy::kMalbSC,
                                   bench::WithFiltering(config), clients, Seconds(400.0));

  PrintHeader("Table 5: TPC-W disk I/O per transaction with update filtering",
              "MidDB 1.8GB, RAM 512MB, 16 replicas, ordering mix");
  PrintIoRow("LeastConnections", 12, 72, lc.write_kb_per_txn, lc.read_kb_per_txn);
  PrintIoRow("MALB-SC", 12, 20, malb.write_kb_per_txn, malb.read_kb_per_txn);
  PrintIoRow("MALB-SC+UpdateFiltering", 9, 18, uf.write_kb_per_txn, uf.read_kb_per_txn);
  std::printf("\nfiltering effect:\n");
  PrintRatio("UF writes / MALB writes (paper 0.75)", 0.75,
             uf.write_kb_per_txn / malb.write_kb_per_txn);
  PrintRatio("UF reads / MALB reads (paper 0.90)", 0.90,
             uf.read_kb_per_txn / malb.read_kb_per_txn);
}

}  // namespace
}  // namespace tashkent

int main() {
  tashkent::Run();
  return 0;
}
