// Campaign "table5" — Table 5: TPC-W average disk I/O per transaction
// including update filtering.
// Paper: MALB-SC writes 12 KB / reads 20 KB; MALB-SC+UpdateFiltering writes
// 9 KB (-25%) / reads 18 KB.
#include "bench/bench_common.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

Workload Mid() { return BuildTpcw(kTpcwMediumEbs); }

std::vector<CampaignCell> Cells() {
  bench::CellOptions uf;
  uf.filtering = true;
  uf.warmup = Seconds(400.0);
  return {
      bench::PolicyCell("lc", Mid, kTpcwOrdering, "LeastConnections"),
      bench::PolicyCell("malb-sc", Mid, kTpcwOrdering, "MALB-SC"),
      bench::PolicyCell("malb-sc-uf", Mid, kTpcwOrdering, "MALB-SC", uf),
  };
}

void Report(const CampaignOutputs& r, ResultSink& out) {
  const ExperimentResult& malb = r.Result("malb-sc");
  const ExperimentResult& uf = r.Result("malb-sc-uf");

  out.Begin("Table 5: TPC-W disk I/O per transaction with update filtering",
            "MidDB 1.8GB, RAM 512MB, 16 replicas, ordering mix");
  out.AddRun(bench::RecOf("LeastConnections", r.Get("lc"), 37, 12, 72));
  out.AddRun(bench::RecOf("MALB-SC", r.Get("malb-sc"), 76, 12, 20));
  out.AddRun(bench::RecOf("MALB-SC+UpdateFiltering", r.Get("malb-sc-uf"), 113, 9, 18));
  out.AddRatio("UF writes / MALB writes (paper 0.75)", 0.75,
               uf.write_kb_per_txn / malb.write_kb_per_txn);
  out.AddRatio("UF reads / MALB reads (paper 0.90)", 0.90,
               uf.read_kb_per_txn / malb.read_kb_per_txn);
}

RegisterCampaign table5{{"table5", "Table 5",
                         "TPC-W disk I/O per transaction with update filtering",
                         "MidDB 1.8GB, RAM 512MB, 16 replicas, ordering mix", Cells,
                         Report}};

}  // namespace
}  // namespace tashkent
