// Table 5: TPC-W average disk I/O per transaction including update filtering.
// Paper: MALB-SC writes 12 KB / reads 20 KB; MALB-SC+UpdateFiltering writes
// 9 KB (-25%) / reads 18 KB.
#include "bench/bench_common.h"
#include "src/workload/tpcw.h"

namespace tashkent {
namespace {

void Run(ResultSink& out) {
  const Workload w = BuildTpcw(kTpcwMediumEbs);
  const ClusterConfig config = MakeClusterConfig(512 * kMiB);
  const int clients = CalibratedClients(w, kTpcwOrdering, config);

  const auto lc = bench::RunPolicy(w, kTpcwOrdering, "LeastConnections", config, clients);
  const auto malb = bench::RunPolicy(w, kTpcwOrdering, "MALB-SC", config, clients);
  const auto uf = bench::RunPolicy(w, kTpcwOrdering, "MALB-SC", bench::WithFiltering(config),
                                   clients, Seconds(400.0));

  out.Begin("Table 5: TPC-W disk I/O per transaction with update filtering",
            "MidDB 1.8GB, RAM 512MB, 16 replicas, ordering mix");
  out.AddRun(
      bench::Rec("LeastConnections", "LeastConnections", w, kTpcwOrdering, lc, 37, 12, 72));
  out.AddRun(bench::Rec("MALB-SC", "MALB-SC", w, kTpcwOrdering, malb, 76, 12, 20));
  out.AddRun(
      bench::Rec("MALB-SC+UpdateFiltering", "MALB-SC", w, kTpcwOrdering, uf, 113, 9, 18));
  out.AddRatio("UF writes / MALB writes (paper 0.75)", 0.75,
               uf.write_kb_per_txn / malb.write_kb_per_txn);
  out.AddRatio("UF reads / MALB reads (paper 0.90)", 0.90,
               uf.read_kb_per_txn / malb.read_kb_per_txn);
}

}  // namespace
}  // namespace tashkent

int main(int argc, char** argv) {
  tashkent::bench::Harness harness(argc, argv, "table5_diskio_filtering");
  tashkent::Run(harness.out());
  return 0;
}
